// Seed-corpus generator for the fuzz battery. Writes small *valid*
// inputs for each target under <outdir>/{inference,store,codec}/ so the
// fuzzers start from the accepted grammar and mutate outward — a fuzzer
// seeded only with noise rarely gets past the first header check.
//
// Usage: deeplens_make_corpus <outdir>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cache/inference_cache.h"
#include "codec/image_codec.h"
#include "codec/video_codec.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "storage/columnar/columnar_file.h"
#include "storage/record_store.h"
#include "tensor/tensor.h"

namespace {

void WriteFile(const std::filesystem::path& path,
               const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

deeplens::Image NoiseImage(int w, int h, int c, uint64_t seed) {
  deeplens::Rng rng(seed);
  deeplens::Image img(w, h, c);
  for (auto& b : img.bytes()) {
    b = static_cast<uint8_t>(rng.NextU64Below(256));
  }
  return img;
}

}  // namespace

int main(int argc, char** argv) {
  using deeplens::ByteBuffer;
  using deeplens::InferenceValue;
  using deeplens::Slice;

  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <outdir>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path out(argv[1]);
  std::filesystem::create_directories(out / "inference");
  std::filesystem::create_directories(out / "store");
  std::filesystem::create_directories(out / "codec");
  std::filesystem::create_directories(out / "columnar");

  // --- Inference values: one seed per payload alternative ---------------
  {
    std::vector<InferenceValue> values;
    values.push_back(InferenceValue{std::string("SPEED LIMIT 65")});
    values.push_back(InferenceValue{12.75});
    values.push_back(InferenceValue{
        deeplens::Tensor::FromVector({0.5f, -1.25f, 3.0f, 0.0f})});
    values.push_back(InferenceValue{std::vector<deeplens::nn::Detection>{
        {deeplens::nn::BBox{4, 8, 60, 44}, deeplens::nn::ObjectClass::kCar,
         0.9f},
        {deeplens::nn::BBox{0, 0, 8, 8}, deeplens::nn::ObjectClass::kPerson,
         0.4f}}});
    values.push_back(InferenceValue{std::string()});  // empty string
    values.push_back(InferenceValue{deeplens::Tensor()});  // empty tensor
    int i = 0;
    for (const InferenceValue& v : values) {
      ByteBuffer buf;
      v.SerializeInto(&buf);
      WriteFile(out / "inference" / ("value" + std::to_string(i++)),
                buf.data());
    }
  }

  // --- RecordStore logs: the backing file of a real store ---------------
  {
    const auto log = out / "store" / "log0";
    std::filesystem::remove(log);
    {
      auto store = deeplens::RecordStore::Open(log.string());
      if (!store.ok()) {
        std::fprintf(stderr, "corpus store: %s\n",
                     store.status().ToString().c_str());
        return 1;
      }
      (void)(*store)->Put(Slice("alpha"), Slice("first value"));
      (void)(*store)->Put(Slice("beta"), Slice("second"));
      (void)(*store)->Put(Slice("alpha"), Slice("overwritten"));
      (void)(*store)->Delete(Slice("beta"));
      (void)(*store)->Put(Slice("gamma"), Slice(std::string(300, 'g')));
      (void)(*store)->Flush();
    }
    // A second seed: the same log with a torn tail (half a record).
    std::ifstream in(log, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    std::ofstream torn(out / "store" / "log1_torn",
                       std::ios::binary | std::ios::trunc);
    torn.write(bytes.data(),
               static_cast<std::streamsize>(bytes.size() * 3 / 4));
  }

  // --- Columnar view files: a real two-chunk file + a torn tail ---------
  {
    const auto file = out / "columnar" / "view0";
    std::filesystem::remove(file);
    deeplens::columnar::ColumnarWriterOptions options;
    options.chunk_rows = 4;
    auto writer =
        deeplens::columnar::ColumnarWriter::Open(file.string(), options);
    if (!writer.ok()) {
      std::fprintf(stderr, "corpus columnar: %s\n",
                   writer.status().ToString().c_str());
      return 1;
    }
    for (deeplens::PatchId id = 1; id <= 7; ++id) {
      deeplens::Patch p;
      p.set_id(id);
      p.set_ref(deeplens::ImgRef{"cam", static_cast<int>(id * 3),
                                 deeplens::kInvalidPatchId});
      p.set_bbox(deeplens::nn::BBox{0, 0, static_cast<int>(8 + id), 12});
      p.mutable_meta().Set("label",
                           std::string(id % 2 == 0 ? "car" : "person"));
      p.mutable_meta().Set("score", 0.25 * static_cast<double>(id));
      if (id == 3) p.set_pixels(NoiseImage(5, 4, 3, id));
      if (id == 5) {
        p.set_features(deeplens::Tensor::FromVector({1.0f, -2.0f, 0.5f}));
      }
      (void)(*writer)->Append(p);
    }
    if (!(*writer)->Commit().ok()) {
      std::fprintf(stderr, "corpus columnar: commit failed\n");
      return 1;
    }
    // Second seed: the same file with a torn footer tail.
    std::ifstream in(file, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    std::ofstream torn(out / "columnar" / "view1_torn",
                       std::ios::binary | std::ios::trunc);
    torn.write(bytes.data(),
               static_cast<std::streamsize>(bytes.size() - 9));
  }

  // --- Codec streams: selector byte + valid bitstream -------------------
  {
    const auto img = NoiseImage(24, 16, 3, 0xc0dec);
    auto ljpg = deeplens::codec::EncodeImage(
        img, deeplens::codec::Quality::kMedium);
    ljpg.insert(ljpg.begin(), 0);  // selector 0: DecodeImage
    WriteFile(out / "codec" / "ljpg", ljpg);

    auto raw = deeplens::codec::SerializeRawImage(NoiseImage(8, 8, 1, 7));
    raw.insert(raw.begin(), 1);  // selector 1: DeserializeRawImage
    WriteFile(out / "codec" / "raw", raw);

    std::vector<deeplens::Image> frames;
    for (int f = 0; f < 3; ++f) frames.push_back(NoiseImage(16, 16, 3, f));
    deeplens::codec::VideoCodecOptions options;
    options.gop_size = 2;  // one keyframe + P-frames in three frames
    auto video = deeplens::codec::EncodeVideo(frames, options);
    if (!video.ok()) {
      std::fprintf(stderr, "corpus video: %s\n",
                   video.status().ToString().c_str());
      return 1;
    }
    video->insert(video->begin(), 2);  // selector 2: DecodeVideo
    WriteFile(out / "codec" / "video", *video);
  }

  std::printf("corpus written under %s\n", out.string().c_str());
  return 0;
}
