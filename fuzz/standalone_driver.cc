// Standalone fallback driver for the fuzz targets.
//
// The fuzz targets speak the libFuzzer ABI (LLVMFuzzerTestOneInput).
// When the toolchain has libFuzzer (clang, -fsanitize=fuzzer), CMake
// links the real engine and this file is not compiled. On a gcc-only
// toolchain this driver stands in: it replays every file in the corpus
// directories given on the command line, then runs a deterministic
// mutation loop over the corpus (byte flips, truncations, splices,
// insertions) for a bounded number of runs / wall-clock budget. The
// point is CI coverage of the decode paths on every toolchain — a
// coverage-guided engine explores deeper, but the invariants the
// targets assert (no UB, no wrong answers, lossless round-trips) are
// checked either way, under whatever sanitizers the build enables.
//
// Flags (libFuzzer-compatible subset, unknown -flags are ignored):
//   -runs=N            mutation iterations after corpus replay (0 = replay
//                      only; default 2000)
//   -max_total_time=S  wall-clock budget in seconds (default unlimited)
//   -seed=N            mutation RNG seed (default 1)
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

// Small deterministic RNG (xorshift*), independent of the library so the
// driver has zero dependencies on the code under test.
struct DriverRng {
  uint64_t state;
  explicit DriverRng(uint64_t seed) : state(seed ? seed : 1) {}
  uint64_t Next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545F4914F6CDD1Dull;
  }
  size_t Below(size_t n) { return n == 0 ? 0 : Next() % n; }
};

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

std::vector<uint8_t> Mutate(const std::vector<std::vector<uint8_t>>& corpus,
                            DriverRng* rng) {
  std::vector<uint8_t> input =
      corpus.empty() ? std::vector<uint8_t>()
                     : corpus[rng->Below(corpus.size())];
  const int rounds = 1 + static_cast<int>(rng->Below(4));
  for (int r = 0; r < rounds; ++r) {
    switch (rng->Below(5)) {
      case 0:  // flip a byte
        if (!input.empty()) {
          input[rng->Below(input.size())] ^=
              static_cast<uint8_t>(1 + rng->Below(255));
        }
        break;
      case 1:  // truncate
        if (!input.empty()) input.resize(rng->Below(input.size()));
        break;
      case 2: {  // insert random bytes
        const size_t at = rng->Below(input.size() + 1);
        const size_t count = 1 + rng->Below(8);
        std::vector<uint8_t> noise(count);
        for (auto& b : noise) b = static_cast<uint8_t>(rng->Next());
        input.insert(input.begin() + static_cast<ptrdiff_t>(at),
                     noise.begin(), noise.end());
        break;
      }
      case 3: {  // splice a window from another corpus entry
        if (corpus.empty()) break;
        const auto& other = corpus[rng->Below(corpus.size())];
        if (other.empty()) break;
        const size_t from = rng->Below(other.size());
        const size_t len = 1 + rng->Below(other.size() - from);
        const size_t at = rng->Below(input.size() + 1);
        input.insert(input.begin() + static_cast<ptrdiff_t>(at),
                     other.begin() + static_cast<ptrdiff_t>(from),
                     other.begin() + static_cast<ptrdiff_t>(from + len));
        break;
      }
      default:  // overwrite a run with one value
        if (!input.empty()) {
          const size_t at = rng->Below(input.size());
          const size_t len = 1 + rng->Below(input.size() - at);
          std::memset(input.data() + at, static_cast<int>(rng->Next() & 0xff),
                      len);
        }
        break;
    }
  }
  return input;
}

}  // namespace

int main(int argc, char** argv) {
  long long runs = 2000;
  long long max_seconds = -1;
  uint64_t seed = 1;
  std::vector<std::string> corpus_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-runs=", 0) == 0) {
      runs = std::atoll(arg.c_str() + 6);
    } else if (arg.rfind("-max_total_time=", 0) == 0) {
      max_seconds = std::atoll(arg.c_str() + 16);
    } else if (arg.rfind("-seed=", 0) == 0) {
      seed = static_cast<uint64_t>(std::atoll(arg.c_str() + 6));
    } else if (!arg.empty() && arg[0] == '-') {
      // Unknown libFuzzer flag: ignore so ci.sh invocations work
      // unchanged against the real engine.
    } else {
      corpus_paths.push_back(arg);
    }
  }

  std::vector<std::vector<uint8_t>> corpus;
  for (const std::string& path : corpus_paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(path, ec)) {
        if (entry.is_regular_file()) {
          corpus.push_back(ReadFile(entry.path().string()));
        }
      }
    } else if (std::filesystem::is_regular_file(path, ec)) {
      corpus.push_back(ReadFile(path));
    }
  }

  // Replay the whole corpus first: every committed seed must stay clean.
  for (const auto& input : corpus) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  std::fprintf(stderr, "standalone driver: replayed %zu corpus inputs\n",
               corpus.size());

  const auto t0 = std::chrono::steady_clock::now();
  DriverRng rng(seed);
  long long executed = 0;
  for (; executed < runs; ++executed) {
    if (max_seconds >= 0 &&
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::steady_clock::now() - t0)
                .count() >= max_seconds) {
      break;
    }
    const std::vector<uint8_t> input = Mutate(corpus, &rng);
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  std::fprintf(stderr, "standalone driver: %lld mutated runs, done\n",
               executed);
  return 0;
}
