// Fuzz target: InferenceValue::Parse — the decoder every persistent
// cache lookup runs over bytes that may have been torn, truncated, or
// written by an alien build. Invariants:
//
//  1. Parse never crashes, hangs, or trips a sanitizer on any input;
//     a malformed record is a typed error (treated as a cache miss),
//     never a wrong answer.
//  2. Accepted values round-trip losslessly: Parse(bytes) → Serialize →
//     Parse → Serialize must reproduce the first serialization exactly
//     (serialize∘parse is idempotent on the accepted set — a value that
//     parses two different ways would poison the spill log).
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "cache/inference_cache.h"
#include "common/bytes.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using deeplens::ByteBuffer;
  using deeplens::InferenceValue;
  using deeplens::Slice;

  auto parsed = InferenceValue::Parse(
      Slice(reinterpret_cast<const char*>(data), size));
  if (!parsed.ok()) return 0;  // rejected: fine, as long as it was typed

  ByteBuffer first;
  parsed->SerializeInto(&first);
  auto reparsed = InferenceValue::Parse(Slice(first.data().data(),
                                              first.data().size()));
  if (!reparsed.ok()) {
    std::fprintf(stderr,
                 "inference value accepted but its serialization was "
                 "rejected: %s\n",
                 reparsed.status().ToString().c_str());
    std::abort();
  }
  ByteBuffer second;
  reparsed->SerializeInto(&second);
  if (first.data() != second.data()) {
    std::fprintf(stderr,
                 "inference value round-trip not byte-stable "
                 "(%zu vs %zu bytes)\n",
                 first.data().size(), second.data().size());
    std::abort();
  }
  // Budget accounting must stay sane on anything that parses.
  if (parsed->ByteSize() < sizeof(InferenceValue)) std::abort();
  return 0;
}
