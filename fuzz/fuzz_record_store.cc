// Fuzz target: RecordStore log replay — the crash-recovery path that
// turns arbitrary on-disk bytes back into a KV index. The input IS the
// log file. Invariants:
//
//  1. Open never crashes or trips a sanitizer, whatever the log holds —
//     corruption and torn tails degrade to fewer live records, never UB.
//  2. Everything the replay accepted must be readable: each surviving
//     key Gets successfully, scans agree with the index, and the stats
//     accounting stays internally consistent.
//  3. The store stays *usable* after replaying garbage: a Put followed
//     by Get must round-trip, and Compact must succeed and preserve the
//     live set.
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "storage/record_store.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using deeplens::RecordStore;
  using deeplens::Slice;

  static uint64_t counter = 0;
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("dl_fuzz_store_" + std::to_string(::getpid()) + "_" +
        std::to_string(counter++)))
          .string();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(size));
  }

  auto opened = RecordStore::Open(path);
  if (!opened.ok()) {
    // A typed open failure is acceptable; leaking the temp file is not.
    std::filesystem::remove(path);
    return 0;
  }
  RecordStore& store = **opened;

  uint64_t scanned = 0;
  auto st = store.ScanAll([&](const Slice& key, const Slice&) {
    ++scanned;
    // The index says this key is live; the data log must agree.
    auto value = store.Get(key);
    if (!value.ok()) {
      std::fprintf(stderr, "live key unreadable after replay: %s\n",
                   value.status().ToString().c_str());
      std::abort();
    }
    return true;
  });
  if (!st.ok()) std::abort();  // ScanAll over a replayed index must succeed

  const auto stats = store.Stats();
  if (stats.num_records != scanned) std::abort();
  if (stats.live_bytes > stats.log_bytes) std::abort();

  // The store must still work as a store.
  if (!store.Put(Slice("fuzz-probe"), Slice("alive")).ok()) std::abort();
  auto probe = store.Get(Slice("fuzz-probe"));
  if (!probe.ok() || probe->size() != 5) std::abort();
  if (!store.Compact().ok()) std::abort();
  if (store.Stats().num_records != scanned + 1) std::abort();

  opened->reset();
  std::filesystem::remove(path);
  return 0;
}
