// Fuzz target: the columnar view file decoder — footer catalog parsing
// plus the per-column chunk decoders, the path that turns arbitrary
// on-disk bytes back into patches. The input IS the file. Invariants:
//
//  1. Open never crashes, never trips a sanitizer, and never allocates
//     proportionally to a fuzzed length field — corrupt footers and
//     chunks degrade to typed Corruption, not UB or OOM.
//  2. Whatever the footer accepted must decode consistently: chunk row
//     counts match the catalog, ids are strictly ascending within the
//     footer-declared range, and a second read returns the same rows.
//  3. Scans with a row filter / projection over accepted files never
//     return rows a full read would not (the filter can only shrink).
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/patch.h"
#include "storage/columnar/columnar_file.h"
#include "storage/columnar/format.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using deeplens::Patch;
  using deeplens::PatchCollection;

  static uint64_t counter = 0;
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("dl_fuzz_columnar_" + std::to_string(::getpid()) + "_" +
        std::to_string(counter++)))
          .string();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(size));
  }

  auto opened = deeplens::columnar::ColumnarReader::Open(path);
  if (!opened.ok()) {
    // Garbage must fail typed, never crash.
    std::filesystem::remove(path);
    return 0;
  }
  auto reader = *opened;

  // Full read: every accepted chunk either decodes or fails typed.
  uint64_t decoded_rows = 0;
  uint64_t last_id = 0;
  bool any = false;
  for (size_t c = 0; c < reader->num_chunks(); ++c) {
    auto rows = reader->ReadChunk(c, deeplens::columnar::ChunkReadOptions{});
    if (!rows.ok()) continue;  // CRC/decode corruption is acceptable
    const auto& meta = reader->chunk(c);
    if (rows->size() != meta.rows) std::abort();
    for (const Patch& p : *rows) {
      if (any && p.id() <= last_id) std::abort();  // ascending ids
      if (p.id() < meta.id_min || p.id() > meta.id_max) std::abort();
      last_id = p.id();
      any = true;
    }
    decoded_rows += rows->size();

    // Determinism: decoding the same chunk twice agrees.
    auto again =
        reader->ReadChunk(c, deeplens::columnar::ChunkReadOptions{});
    if (!again.ok() || again->size() != rows->size()) std::abort();

    // A filtered + projected read returns a subset of the full read.
    deeplens::columnar::ChunkReadOptions filtered;
    filtered.projection.pixels = false;
    filtered.projection.features = false;
    filtered.projection.all_meta = false;
    filtered.projection.meta_keys = {"label"};
    deeplens::columnar::ColumnPredicate pred;
    pred.op = 1;  // label >= ""
    pred.key = "label";
    pred.value = deeplens::MetaValue(std::string());
    filtered.row_filter = {pred};
    auto subset = reader->ReadChunk(c, filtered);
    if (subset.ok() && subset->size() > rows->size()) std::abort();
  }
  if (decoded_rows > reader->total_rows()) std::abort();

  std::filesystem::remove(path);
  return 0;
}
