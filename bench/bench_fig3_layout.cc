// Figure 3: end-to-end latency of a temporally-filtered query under the
// different physical layouts. A temporal predicate selects a small window
// of frames; the frame file pushes it down exactly, the segmented file
// coarsely (clip granularity), and the encoded file must scan-decode the
// whole prefix (paper §7.1, Fig. 3).
#include <cstdio>

#include "bench_common.h"
#include "common/clock.h"
#include "nn/models.h"
#include "sim/datasets.h"
#include "storage/video_store.h"

namespace deeplens {
namespace bench {
namespace {

int Run() {
  PrintHeader("Figure 3: temporal filter push-down by layout",
              "paper Fig. 3 (hybrid layouts support coarse push-down)");

  sim::TrafficCamConfig config;
  config.num_frames = 360 * BenchScale();
  sim::TrafficCamSim traffic(config);
  nn::TinySsdDetector detector;
  nn::Device* device = nn::GetDevice(nn::DeviceKind::kCpuVector);

  // Temporal predicate: a 5% window near the end of the video (worst case
  // for sequential decoders).
  const int lo = config.num_frames * 85 / 100;
  const int hi = lo + config.num_frames * 5 / 100;

  ScratchDir scratch("dl_fig3");
  std::printf("query: count car detections in frames [%d, %d] of %d\n\n",
              lo, hi, config.num_frames);
  std::printf("%-14s %12s %16s %12s\n", "layout", "latency_ms",
              "frames_decoded", "cars_found");

  auto run_layout = [&](const std::string& name,
                        const VideoStoreOptions& options) {
    const std::string path = scratch.path() + "/" + name;
    auto writer = CreateVideoWriter(path, options);
    DL_CHECK_OK(writer.status());
    for (int f = 0; f < config.num_frames; ++f) {
      DL_CHECK_OK((*writer)->AddFrame(traffic.FrameAt(f)));
    }
    DL_CHECK_OK((*writer)->Finish());

    auto reader = OpenVideo(path);
    DL_CHECK_OK(reader.status());
    Stopwatch timer;
    int cars = 0;
    DL_CHECK_OK((*reader)->ReadRange(lo, hi,
                                     [&](int, const Image& frame) {
                                       auto dets =
                                           detector.Detect(frame, device);
                                       if (dets.ok()) {
                                         for (const auto& d : *dets) {
                                           if (d.label ==
                                               nn::ObjectClass::kCar) {
                                             ++cars;
                                           }
                                         }
                                       }
                                       return true;
                                     }));
    std::printf("%-14s %12.1f %16llu %12d\n", name.c_str(),
                timer.ElapsedMillis(),
                static_cast<unsigned long long>((*reader)->frames_decoded()),
                cars);
  };

  {
    VideoStoreOptions o;
    o.format = VideoFormat::kFrameRaw;
    run_layout("frame-raw", o);
  }
  {
    VideoStoreOptions o;
    o.format = VideoFormat::kFrameLjpg;
    run_layout("frame-ljpg", o);
  }
  {
    VideoStoreOptions o;
    o.format = VideoFormat::kSegmented;
    o.clip_frames = 32;
    o.gop_size = 32;
    run_layout("segmented", o);
  }
  {
    VideoStoreOptions o;
    o.format = VideoFormat::kEncoded;
    o.gop_size = 32;
    run_layout("encoded", o);
  }

  std::printf(
      "\nexpected shape: frame files decode only the window; the segmented\n"
      "file wastes at most one clip; the encoded file decodes the whole\n"
      "prefix and is slowest for selective temporal predicates.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace deeplens

int main() { return deeplens::bench::Run(); }
