// Micro-benchmarks for the codec substrate: LJPG encode/decode per
// quality, DLV1 I- vs P-frame cost, and the DCT kernel — the constants
// behind the storage advisor's cost model.
#include <benchmark/benchmark.h>

#include "codec/dct.h"
#include "codec/image_codec.h"
#include "codec/video_codec.h"
#include "common/rng.h"

namespace deeplens {
namespace codec {
namespace {

Image BenchFrame(int w, int h, uint64_t seed) {
  Image img(w, h, 3);
  Rng rng(seed);
  for (auto& b : img.bytes()) {
    b = static_cast<uint8_t>(110 + rng.NextU64Below(24));
  }
  return img;
}

void BM_Dct8x8(benchmark::State& state) {
  Rng rng(1);
  float block[kBlockArea], out[kBlockArea];
  for (float& v : block) v = static_cast<float>(rng.NextGaussian() * 20);
  for (auto _ : state) {
    ForwardDct8x8(block, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Dct8x8);

void BM_LjpgEncode(benchmark::State& state) {
  const Image img = BenchFrame(128, 72, 2);
  const auto quality = static_cast<Quality>(state.range(0));
  for (auto _ : state) {
    auto bytes = EncodeImage(img, quality);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetLabel(QualityName(quality));
}
BENCHMARK(BM_LjpgEncode)->Arg(0)->Arg(1)->Arg(2);

void BM_LjpgDecode(benchmark::State& state) {
  const Image img = BenchFrame(128, 72, 3);
  const auto bytes = EncodeImage(img, Quality::kHigh);
  for (auto _ : state) {
    auto decoded = DecodeImage(Slice(bytes));
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_LjpgDecode);

void BM_VideoEncodeGop(benchmark::State& state) {
  // Cost per frame as GOP size varies: GOP 1 = all-intra.
  const int gop = static_cast<int>(state.range(0));
  std::vector<Image> frames;
  for (int f = 0; f < 16; ++f) frames.push_back(BenchFrame(128, 72, 4));
  VideoCodecOptions options;
  options.gop_size = gop;
  for (auto _ : state) {
    auto stream = EncodeVideo(frames, options);
    benchmark::DoNotOptimize(stream);
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_VideoEncodeGop)->Arg(1)->Arg(8)->Arg(16);

void BM_VideoSequentialDecode(benchmark::State& state) {
  std::vector<Image> frames;
  for (int f = 0; f < 32; ++f) frames.push_back(BenchFrame(128, 72, 5));
  auto stream = EncodeVideo(frames, VideoCodecOptions{});
  for (auto _ : state) {
    auto decoded = DecodeVideo(Slice(*stream));
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_VideoSequentialDecode);

}  // namespace
}  // namespace codec
}  // namespace deeplens

BENCHMARK_MAIN();
