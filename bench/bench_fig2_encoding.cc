// Figure 2: storage cost (log scale in the paper) and downstream accuracy
// for RAW vs lossy encodings at High/Medium/Low quality.
//
// The pipeline is the paper's Q2 setting: traffic video → storage format →
// decode → TinySSD → detection accuracy vs ground truth (IoU 0.5).
#include <cstdio>
#include <optional>
#include <vector>

#include "bench_common.h"
#include "common/string_util.h"
#include "nn/models.h"
#include "sim/accuracy.h"
#include "sim/datasets.h"
#include "storage/video_store.h"

namespace deeplens {
namespace bench {
namespace {

struct Row {
  std::string name;
  uint64_t bytes;
  double f1;
};

int Run() {
  PrintHeader("Figure 2: encoding vs storage and accuracy",
              "paper Fig. 2 (storage on log scale, accuracy of Q2)");

  sim::TrafficCamConfig config;
  config.num_frames = 400 * BenchScale();
  sim::TrafficCamSim traffic(config);
  nn::TinySsdDetector detector;
  nn::Device* device = nn::GetDevice(nn::DeviceKind::kCpuVector);

  ScratchDir scratch("dl_fig2");
  std::vector<Row> rows;

  auto evaluate = [&](const std::string& name,
                      const VideoStoreOptions& options) {
    const std::string path = scratch.path() + "/" + name;
    auto writer = CreateVideoWriter(path, options);
    DL_CHECK_OK(writer.status());
    for (int f = 0; f < config.num_frames; ++f) {
      DL_CHECK_OK((*writer)->AddFrame(traffic.FrameAt(f)));
    }
    DL_CHECK_OK((*writer)->Finish());
    auto reader = OpenVideo(path);
    DL_CHECK_OK(reader.status());

    // Detection accuracy over a frame sample, decoded from the store.
    sim::PrecisionRecall total;
    const int stride = std::max(1, config.num_frames / 120);
    DL_CHECK_OK((*reader)->ReadRange(
        0, config.num_frames - 1, [&](int f, const Image& frame) {
          if (f % stride != 0) return true;
          auto dets = detector.Detect(frame, device);
          if (!dets.ok()) return false;
          const auto truth = traffic.TruthAt(f).objects;
          total.Merge(sim::MatchDetections(*dets, truth,
                                           nn::ObjectClass::kCar, 0.5f));
          total.Merge(sim::MatchDetections(*dets, truth,
                                           nn::ObjectClass::kPerson, 0.5f));
          return true;
        }));
    rows.push_back(Row{name, (*reader)->storage_bytes(), total.f1()});
  };

  {
    VideoStoreOptions o;
    o.format = VideoFormat::kFrameRaw;
    evaluate("RAW", o);
  }
  for (auto q :
       {codec::Quality::kHigh, codec::Quality::kMedium, codec::Quality::kLow}) {
    VideoStoreOptions o;
    o.format = VideoFormat::kEncoded;
    o.quality = q;
    o.gop_size = 32;
    evaluate(std::string("DLV1-") + codec::QualityName(q), o);
  }

  std::printf("%-14s %14s %10s %10s\n", "format", "storage", "ratio", "F1");
  const double raw_bytes = static_cast<double>(rows[0].bytes);
  for (const Row& row : rows) {
    std::printf("%-14s %14s %9.1fx %10.3f\n", row.name.c_str(),
                HumanBytes(row.bytes).c_str(),
                raw_bytes / static_cast<double>(row.bytes), row.f1);
  }
  std::printf(
      "\nexpected shape: compression saves 20-50x+; High keeps accuracy,\n"
      "Low degrades it (paper: \"negligible impact ... for larger\n"
      "compression ratios we do see a degradation\").\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace deeplens

int main() { return deeplens::bench::Run(); }
