// Microbenchmark: tuple-at-a-time Volcano pipeline vs. batch-at-a-time
// execution vs. the morsel-parallel driver, on a filter+map pipeline over
// a 100k-patch synthetic view. This is the speedup the vectorized refactor
// claims; results are checked for equality across engines before timing is
// reported.
#include <cinttypes>
#include <cstdio>

#include "bench_common.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "exec/batch.h"
#include "exec/expression.h"
#include "exec/operators.h"
#include "exec/pipeline.h"

namespace deeplens {
namespace bench {
namespace {

constexpr size_t kBaseRows = 100000;
constexpr int kReps = 3;
constexpr size_t kFeatureDim = 64;

PatchCollection SyntheticView(size_t n) {
  Rng rng(0xbadc5eed);
  static const char* kLabels[] = {"car", "person", "bus"};
  PatchCollection out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Patch p;
    p.set_id(static_cast<PatchId>(i + 1));
    const int frameno = static_cast<int>(i / 16);
    p.set_ref(ImgRef{"synthetic", frameno, kInvalidPatchId});
    p.set_bbox(nn::BBox{0, 0, 32, 32});
    p.mutable_meta().Set(meta_keys::kLabel, kLabels[i % 3]);
    p.mutable_meta().Set(meta_keys::kFrameNo, int64_t{frameno});
    p.mutable_meta().Set(meta_keys::kScore, rng.NextDouble());
    p.mutable_meta().Set(meta_keys::kPatchId, static_cast<int64_t>(i + 1));
    std::vector<float> f(kFeatureDim);
    for (auto& v : f) v = rng.NextFloat();
    p.set_features(Tensor::FromVector(std::move(f)));
    out.push_back(std::move(p));
  }
  return out;
}

Result<PatchTuple> Annotate(PatchTuple t) {
  t[0].mutable_meta().Set(
      "brightness_ok", t[0].meta().Get(meta_keys::kScore).AsFloat().value() *
                               2.0 <
                           1.9);
  return t;
}

uint64_t Checksum(const PatchCollection& rows) {
  uint64_t sum = 0;
  for (const Patch& p : rows) sum += p.id();
  return sum;
}

struct Timing {
  double best_ms = 1e300;
  uint64_t rows_out = 0;
  uint64_t checksum = 0;
};

template <typename Fn>
Timing Measure(const Fn& run) {
  Timing timing;
  for (int rep = 0; rep < kReps; ++rep) {
    Stopwatch timer;
    PatchCollection out = run();
    const double ms = timer.ElapsedMillis();
    timing.best_ms = ms < timing.best_ms ? ms : timing.best_ms;
    timing.rows_out = out.size();
    timing.checksum = Checksum(out);
  }
  return timing;
}

int Run() {
  PrintHeader("micro: pipeline engines (tuple vs batch vs batch+parallel)",
              "the §5 execution-model refactor; no paper figure");

  const size_t n = kBaseRows * static_cast<size_t>(BenchScale());
  const PatchCollection view = SyntheticView(n);
  const ExprPtr predicate = And(Eq(Attr(meta_keys::kLabel), Lit("car")),
                                Ge(Attr(meta_keys::kScore), Lit(0.5)));

  std::printf("rows: %zu, filter: label=='car' && score>=0.5, then map\n",
              n);
  std::printf("workers: %zu, batch size: %zu\n\n",
              ThreadPool::Global().num_threads(), kDefaultBatchSize);

  // 1. Tuple-at-a-time Volcano pipeline (the pre-refactor engine).
  const Timing tuple_t = Measure([&]() {
    auto plan = MakeVolcanoMap(
        MakeVolcanoFilter(MakeVectorSource(view), predicate), Annotate);
    auto out = CollectPatches(plan.get());
    DL_CHECK_OK(out.status());
    return std::move(out).value();
  });

  // 2. Batch-at-a-time, serial (vectorized operators, one thread).
  const Timing batch_t = Measure([&]() {
    BatchPipeline pipeline;
    pipeline.Filter(predicate).Map(Annotate);
    MorselOptions options;
    options.num_threads = 1;
    auto out = pipeline.RunOnPatches(view, options);
    DL_CHECK_OK(out.status());
    return std::move(out).value();
  });

  // 3. Batch + morsel-parallel across the global pool.
  const Timing parallel_t = Measure([&]() {
    BatchPipeline pipeline;
    pipeline.Filter(predicate).Map(Annotate);
    auto out = pipeline.RunOnPatches(view);
    DL_CHECK_OK(out.status());
    return std::move(out).value();
  });

  if (tuple_t.rows_out != batch_t.rows_out ||
      tuple_t.rows_out != parallel_t.rows_out ||
      tuple_t.checksum != batch_t.checksum ||
      tuple_t.checksum != parallel_t.checksum) {
    std::printf("ENGINE MISMATCH: tuple=%" PRIu64 "/%" PRIu64
                " batch=%" PRIu64 "/%" PRIu64 " parallel=%" PRIu64
                "/%" PRIu64 "\n",
                tuple_t.rows_out, tuple_t.checksum, batch_t.rows_out,
                batch_t.checksum, parallel_t.rows_out, parallel_t.checksum);
    return 1;
  }

  const double tuple_rate = static_cast<double>(n) / tuple_t.best_ms * 1e3;
  const double batch_rate = static_cast<double>(n) / batch_t.best_ms * 1e3;
  const double par_rate = static_cast<double>(n) / parallel_t.best_ms * 1e3;

  std::printf("%-24s %10s %14s %9s\n", "engine", "ms", "rows/s", "speedup");
  std::printf("%-24s %10.2f %14.0f %8.2fx\n", "tuple-at-a-time",
              tuple_t.best_ms, tuple_rate, 1.0);
  std::printf("%-24s %10.2f %14.0f %8.2fx\n", "batch (serial)",
              batch_t.best_ms, batch_rate, batch_rate / tuple_rate);
  std::printf("%-24s %10.2f %14.0f %8.2fx\n", "batch+parallel",
              parallel_t.best_ms, par_rate, par_rate / tuple_rate);
  std::printf("\nselected rows: %" PRIu64 " (%.1f%%), identical across all "
              "three engines\n",
              tuple_t.rows_out,
              100.0 * static_cast<double>(tuple_t.rows_out) /
                  static_cast<double>(n));

  const double speedup = par_rate / tuple_rate;
  if (speedup < 2.0) {
    std::printf("\nWARNING: batch+parallel speedup %.2fx is below the 2x "
                "target\n", speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace deeplens

int main() { return deeplens::bench::Run(); }
