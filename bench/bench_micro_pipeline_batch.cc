// Microbenchmark: tuple-at-a-time Volcano pipeline vs. batch-at-a-time
// execution vs. the morsel-parallel driver, on (1) a filter+map pipeline
// over a 100k-patch synthetic view and (2) a hash join + group-by
// aggregate, serial vs. morsel-parallel. Results are checked for equality
// across engines before timing is reported, and all timings are emitted
// to BENCH_pipeline.json for the perf trajectory.
#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cache/inference_cache.h"
#include "cache/inflight.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "exec/aggregates.h"
#include "exec/batch.h"
#include "exec/batch_former.h"
#include "exec/expression.h"
#include "exec/joins.h"
#include "exec/operators.h"
#include "exec/pipeline.h"
#include "exec/scheduler.h"
#include "nn/device.h"
#include "nn/models.h"
#include "sim/scene.h"

namespace deeplens {
namespace bench {
namespace {

constexpr size_t kBaseRows = 100000;
constexpr int kReps = 3;
constexpr size_t kFeatureDim = 64;

PatchCollection SyntheticView(size_t n) {
  Rng rng(0xbadc5eed);
  static const char* kLabels[] = {"car", "person", "bus"};
  PatchCollection out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Patch p;
    p.set_id(static_cast<PatchId>(i + 1));
    const int frameno = static_cast<int>(i / 16);
    p.set_ref(ImgRef{"synthetic", frameno, kInvalidPatchId});
    p.set_bbox(nn::BBox{0, 0, 32, 32});
    p.mutable_meta().Set(meta_keys::kLabel, kLabels[i % 3]);
    p.mutable_meta().Set(meta_keys::kFrameNo, int64_t{frameno});
    p.mutable_meta().Set(meta_keys::kScore, rng.NextDouble());
    p.mutable_meta().Set(meta_keys::kPatchId, static_cast<int64_t>(i + 1));
    std::vector<float> f(kFeatureDim);
    for (auto& v : f) v = rng.NextFloat();
    p.set_features(Tensor::FromVector(std::move(f)));
    out.push_back(std::move(p));
  }
  return out;
}

Result<PatchTuple> Annotate(PatchTuple t) {
  t[0].mutable_meta().Set(
      "brightness_ok", t[0].meta().Get(meta_keys::kScore).AsFloat().value() *
                               2.0 <
                           1.9);
  return t;
}

// Rewrites the join keys of a synthetic view to follow a Zipf-ish
// distribution (P(k) ∝ 1/(k+1)) over [0, num_keys): a few hot framenos
// hold most of the rows. Key range matters for comparability — every key
// still matches the uniform left side, so the skewed join examines the
// same number of candidate pairs as the uniform one; only their spread
// across radix partitions changes.
PatchCollection WithZipfKeys(PatchCollection rows, size_t num_keys) {
  Rng rng(0x5eedca11);
  std::vector<double> cdf(num_keys);
  double total = 0.0;
  for (size_t k = 0; k < num_keys; ++k) {
    total += 1.0 / static_cast<double>(k + 1);
    cdf[k] = total;
  }
  for (double& c : cdf) c /= total;
  for (Patch& p : rows) {
    const double u = rng.NextDouble();
    const size_t key = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    p.mutable_meta().Set(meta_keys::kFrameNo,
                         static_cast<int64_t>(std::min(key, num_keys - 1)));
  }
  return rows;
}

uint64_t Checksum(const PatchCollection& rows) {
  uint64_t sum = 0;
  for (const Patch& p : rows) sum += p.id();
  return sum;
}

struct Timing {
  double best_ms = 1e300;
  uint64_t rows_out = 0;
  uint64_t checksum = 0;
};

template <typename Fn>
Timing Measure(const Fn& run) {
  Timing timing;
  for (int rep = 0; rep < kReps; ++rep) {
    Stopwatch timer;
    PatchCollection out = run();
    const double ms = timer.ElapsedMillis();
    timing.best_ms = ms < timing.best_ms ? ms : timing.best_ms;
    timing.rows_out = out.size();
    timing.checksum = Checksum(out);
  }
  return timing;
}

// Times a join/aggregate runner that reports (rows_out, checksum) itself.
template <typename Fn>
Timing MeasureCounted(const Fn& run) {
  Timing timing;
  for (int rep = 0; rep < kReps; ++rep) {
    Stopwatch timer;
    const std::pair<uint64_t, uint64_t> out = run();
    const double ms = timer.ElapsedMillis();
    timing.best_ms = ms < timing.best_ms ? ms : timing.best_ms;
    timing.rows_out = out.first;
    timing.checksum = out.second;
  }
  return timing;
}

struct JsonCase {
  const char* name;
  Timing timing;
  size_t workers;  // resolved worker count the case actually ran with
};

void WriteJson(const std::vector<JsonCase>& cases, size_t rows,
               size_t join_left, size_t join_right,
               double serving_dedup_rate) {
  std::FILE* f = std::fopen("BENCH_pipeline.json", "w");
  if (f == nullptr) {
    std::printf("WARNING: could not open BENCH_pipeline.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_pipeline_batch\",\n");
  std::fprintf(f, "  \"scan_rows\": %zu,\n", rows);
  std::fprintf(f, "  \"join_rows\": [%zu, %zu],\n", join_left, join_right);
  std::fprintf(f, "  \"serving_dedup_rate\": %.4f,\n", serving_dedup_rate);
  std::fprintf(f, "  \"workers\": %zu,\n  \"cases\": [\n",
               ThreadPool::Global().num_threads());
  for (size_t i = 0; i < cases.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ms\": %.3f, \"rows_out\": %" PRIu64
                 ", \"workers\": %zu}%s\n",
                 cases[i].name, cases[i].timing.best_ms,
                 cases[i].timing.rows_out, cases[i].workers,
                 i + 1 == cases.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_pipeline.json (%zu cases)\n", cases.size());
}

int Run() {
  PrintHeader("micro: pipeline engines (tuple vs batch vs batch+parallel)",
              "the §5 execution-model refactor; no paper figure");

  const size_t n = kBaseRows * static_cast<size_t>(BenchScale());
  const PatchCollection view = SyntheticView(n);
  const ExprPtr predicate = And(Eq(Attr(meta_keys::kLabel), Lit("car")),
                                Ge(Attr(meta_keys::kScore), Lit(0.5)));

  std::printf("rows: %zu, filter: label=='car' && score>=0.5, then map\n",
              n);
  std::printf("workers: %zu, batch size: %zu\n\n",
              ThreadPool::Global().num_threads(), kDefaultBatchSize);

  // 1. Tuple-at-a-time Volcano pipeline (the pre-refactor engine).
  const Timing tuple_t = Measure([&]() {
    auto plan = MakeVolcanoMap(
        MakeVolcanoFilter(MakeVectorSource(view), predicate), Annotate);
    auto out = CollectPatches(plan.get());
    DL_CHECK_OK(out.status());
    return std::move(out).value();
  });

  // 2. Batch-at-a-time, serial (vectorized operators, one thread).
  const Timing batch_t = Measure([&]() {
    BatchPipeline pipeline;
    pipeline.Filter(predicate).Map(Annotate);
    MorselOptions options;
    options.num_threads = 1;
    auto out = pipeline.RunOnPatches(view, options);
    DL_CHECK_OK(out.status());
    return std::move(out).value();
  });

  // 3. Batch + morsel-parallel. Worker counts are pinned per case (the
  // pool may be wider) so recorded timings stay comparable across
  // machines and pool configurations.
  MorselOptions two_workers;
  two_workers.num_threads = 2;
  const Timing parallel_t = Measure([&]() {
    BatchPipeline pipeline;
    pipeline.Filter(predicate).Map(Annotate);
    auto out = pipeline.RunOnPatches(view, two_workers);
    DL_CHECK_OK(out.status());
    return std::move(out).value();
  });

  if (tuple_t.rows_out != batch_t.rows_out ||
      tuple_t.rows_out != parallel_t.rows_out ||
      tuple_t.checksum != batch_t.checksum ||
      tuple_t.checksum != parallel_t.checksum) {
    std::printf("ENGINE MISMATCH: tuple=%" PRIu64 "/%" PRIu64
                " batch=%" PRIu64 "/%" PRIu64 " parallel=%" PRIu64
                "/%" PRIu64 "\n",
                tuple_t.rows_out, tuple_t.checksum, batch_t.rows_out,
                batch_t.checksum, parallel_t.rows_out, parallel_t.checksum);
    return 1;
  }

  const double tuple_rate = static_cast<double>(n) / tuple_t.best_ms * 1e3;
  const double batch_rate = static_cast<double>(n) / batch_t.best_ms * 1e3;
  const double par_rate = static_cast<double>(n) / parallel_t.best_ms * 1e3;

  std::printf("%-24s %10s %14s %9s\n", "engine", "ms", "rows/s", "speedup");
  std::printf("%-24s %10.2f %14.0f %8.2fx\n", "tuple-at-a-time",
              tuple_t.best_ms, tuple_rate, 1.0);
  std::printf("%-24s %10.2f %14.0f %8.2fx\n", "batch (serial)",
              batch_t.best_ms, batch_rate, batch_rate / tuple_rate);
  std::printf("%-24s %10.2f %14.0f %8.2fx\n", "batch+parallel",
              parallel_t.best_ms, par_rate, par_rate / tuple_rate);
  std::printf("\nselected rows: %" PRIu64 " (%.1f%%), identical across all "
              "three engines\n",
              tuple_t.rows_out,
              100.0 * static_cast<double>(tuple_t.rows_out) /
                  static_cast<double>(n));

  // --- Join + pre-merge aggregate: serial core vs morsel-parallel ------
  const size_t join_left = n / 2;
  const size_t join_right = n / 8;
  const PatchCollection left_view = SyntheticView(join_left);
  const PatchCollection right_view = SyntheticView(join_right);
  const ExprPtr join_residual =
      Lt(Attr(0, meta_keys::kScore), Attr(1, meta_keys::kScore));

  auto join_checksum = [](const std::vector<PatchTuple>& tuples) {
    uint64_t sum = 0;
    for (const PatchTuple& t : tuples) sum += t[0].id() * 31 + t[1].id();
    return std::make_pair(static_cast<uint64_t>(tuples.size()), sum);
  };
  MorselOptions serial_opts;
  serial_opts.num_threads = 1;
  MorselOptions four_workers;
  four_workers.num_threads = 4;
  const Timing join_serial_t = MeasureCounted([&]() {
    auto out = HashEqualityJoin(left_view, right_view, meta_keys::kFrameNo,
                                join_residual, nullptr, serial_opts);
    DL_CHECK_OK(out.status());
    return join_checksum(*out);
  });
  const Timing join_parallel_t = MeasureCounted([&]() {
    auto out = HashEqualityJoin(left_view, right_view, meta_keys::kFrameNo,
                                join_residual, nullptr, two_workers);
    DL_CHECK_OK(out.status());
    return join_checksum(*out);
  });
  const Timing join_parallel_4w_t = MeasureCounted([&]() {
    auto out = HashEqualityJoin(left_view, right_view, meta_keys::kFrameNo,
                                join_residual, nullptr, four_workers);
    DL_CHECK_OK(out.status());
    return join_checksum(*out);
  });

  // Skewed-key join: same left side and the same number of candidate
  // pairs, but the right side's keys follow a Zipf distribution, so a few
  // radix partitions hold most of the probe work. Measures that the
  // chunk-level probe dispatch actually balances skew.
  const size_t num_join_keys = (join_right + 15) / 16;
  const PatchCollection skew_right = WithZipfKeys(right_view, num_join_keys);
  const Timing join_skew_serial_t = MeasureCounted([&]() {
    auto out = HashEqualityJoin(left_view, skew_right, meta_keys::kFrameNo,
                                join_residual, nullptr, serial_opts);
    DL_CHECK_OK(out.status());
    return join_checksum(*out);
  });
  const Timing join_skew_t = MeasureCounted([&]() {
    auto out = HashEqualityJoin(left_view, skew_right, meta_keys::kFrameNo,
                                join_residual, nullptr, two_workers);
    DL_CHECK_OK(out.status());
    return join_checksum(*out);
  });

  auto group_checksum = [](const std::map<std::string, uint64_t>& groups) {
    uint64_t sum = 0;
    for (const auto& [k, v] : groups) sum += k.size() * 131 + v;
    return std::make_pair(static_cast<uint64_t>(groups.size()), sum);
  };
  const Timing agg_serial_t = MeasureCounted([&]() {
    auto out = ParallelGroupByCount(view, meta_keys::kLabel, predicate,
                                    serial_opts);
    DL_CHECK_OK(out.status());
    return group_checksum(*out);
  });
  const Timing agg_parallel_t = MeasureCounted([&]() {
    auto out = ParallelGroupByCount(view, meta_keys::kLabel, predicate,
                                    two_workers);
    DL_CHECK_OK(out.status());
    return group_checksum(*out);
  });
  const Timing agg_parallel_4w_t = MeasureCounted([&]() {
    auto out = ParallelGroupByCount(view, meta_keys::kLabel, predicate,
                                    four_workers);
    DL_CHECK_OK(out.status());
    return group_checksum(*out);
  });

  const bool join_mismatch =
      join_serial_t.rows_out != join_parallel_t.rows_out ||
      join_serial_t.checksum != join_parallel_t.checksum ||
      join_serial_t.rows_out != join_parallel_4w_t.rows_out ||
      join_serial_t.checksum != join_parallel_4w_t.checksum ||
      join_skew_serial_t.rows_out != join_skew_t.rows_out ||
      join_skew_serial_t.checksum != join_skew_t.checksum;
  const bool agg_mismatch =
      agg_serial_t.rows_out != agg_parallel_t.rows_out ||
      agg_serial_t.checksum != agg_parallel_t.checksum ||
      agg_serial_t.rows_out != agg_parallel_4w_t.rows_out ||
      agg_serial_t.checksum != agg_parallel_4w_t.checksum;
  if (join_mismatch || agg_mismatch) {
    std::printf("PARALLEL MISMATCH: join %" PRIu64 "/%" PRIu64
                " vs %" PRIu64 "/%" PRIu64 " vs %" PRIu64 "/%" PRIu64
                " (skew %" PRIu64 "/%" PRIu64 " vs %" PRIu64 "/%" PRIu64
                "), agg %" PRIu64 "/%" PRIu64 " vs %" PRIu64 "/%" PRIu64
                " vs %" PRIu64 "/%" PRIu64 "\n",
                join_serial_t.rows_out, join_serial_t.checksum,
                join_parallel_t.rows_out, join_parallel_t.checksum,
                join_parallel_4w_t.rows_out, join_parallel_4w_t.checksum,
                join_skew_serial_t.rows_out, join_skew_serial_t.checksum,
                join_skew_t.rows_out, join_skew_t.checksum,
                agg_serial_t.rows_out, agg_serial_t.checksum,
                agg_parallel_t.rows_out, agg_parallel_t.checksum,
                agg_parallel_4w_t.rows_out, agg_parallel_4w_t.checksum);
    return 1;
  }

  std::printf("\nhash join %zu x %zu on frameno (+score residual), "
              "group-by over %zu rows:\n",
              join_left, join_right, n);
  std::printf("%-24s %10.2f %8.2fx\n", "join (serial)", join_serial_t.best_ms,
              1.0);
  std::printf("%-24s %10.2f %8.2fx\n", "join (parallel 2w)",
              join_parallel_t.best_ms,
              join_serial_t.best_ms / join_parallel_t.best_ms);
  std::printf("%-24s %10.2f %8.2fx\n", "join (parallel 4w)",
              join_parallel_4w_t.best_ms,
              join_serial_t.best_ms / join_parallel_4w_t.best_ms);
  std::printf("%-24s %10.2f %8.2fx  (zipf keys, serial %.2f ms)\n",
              "join (skew 2w)", join_skew_t.best_ms,
              join_skew_serial_t.best_ms / join_skew_t.best_ms,
              join_skew_serial_t.best_ms);
  std::printf("%-24s %10.2f %8.2fx\n", "group-by (serial)",
              agg_serial_t.best_ms, 1.0);
  std::printf("%-24s %10.2f %8.2fx\n", "group-by (parallel 2w)",
              agg_parallel_t.best_ms,
              agg_serial_t.best_ms / agg_parallel_t.best_ms);
  std::printf("%-24s %10.2f %8.2fx\n", "group-by (parallel 4w)",
              agg_parallel_4w_t.best_ms,
              agg_serial_t.best_ms / agg_parallel_4w_t.best_ms);

  // --- Serving phase: concurrent sessions through the fair-share -------
  // --- scheduler: throughput scaling, tail-latency isolation, dedup ----
  constexpr size_t kServeRows = 20000;  // ~20 morsels/unit at batch 1024
  constexpr int kServeUnits = 16;
  constexpr int kServeSessions = 4;
  const PatchCollection serve_view = SyntheticView(kServeRows);
  MorselOptions serve_opts;
  serve_opts.num_threads = 4;
  auto serve_unit = [&]() -> uint64_t {
    BatchPipeline pipeline;
    pipeline.Filter(predicate).Map(Annotate);
    auto out = pipeline.RunOnPatches(serve_view, serve_opts);
    DL_CHECK_OK(out.status());
    return out->size();
  };

  // Aggregate throughput: the same 16 work units, issued by one session
  // vs spread over four concurrent sessions. The gate is a *floor* on
  // concurrent/solo: the serving layer's locking and interleaving must
  // not make concurrency lose; on multi-core machines the ratio rises
  // above 1 for free.
  Timing serving_solo_t;
  Timing serving_concurrent_t;
  uint64_t solo_rows = 0;
  std::atomic<uint64_t> concurrent_rows{0};
  for (int rep = 0; rep < kReps; ++rep) {
    Stopwatch solo_timer;
    {
      ScopedSchedulingContext scope(SchedulingContext{"solo", 1});
      solo_rows = 0;
      for (int u = 0; u < kServeUnits; ++u) solo_rows += serve_unit();
    }
    const double solo_ms = solo_timer.ElapsedMillis();
    serving_solo_t.best_ms = std::min(serving_solo_t.best_ms, solo_ms);
    serving_solo_t.rows_out = solo_rows;

    concurrent_rows = 0;
    std::vector<std::thread> sessions;
    Stopwatch concurrent_timer;
    for (int s = 0; s < kServeSessions; ++s) {
      sessions.emplace_back([&, s]() {
        ScopedSchedulingContext scope(
            SchedulingContext{"tenant" + std::to_string(s), 1});
        uint64_t rows = 0;
        for (int u = 0; u < kServeUnits / kServeSessions; ++u) {
          rows += serve_unit();
        }
        concurrent_rows += rows;
      });
    }
    for (auto& t : sessions) t.join();
    const double conc_ms = concurrent_timer.ElapsedMillis();
    serving_concurrent_t.best_ms =
        std::min(serving_concurrent_t.best_ms, conc_ms);
    serving_concurrent_t.rows_out = concurrent_rows.load();
  }
  if (serving_solo_t.rows_out != serving_concurrent_t.rows_out) {
    std::printf("SERVING MISMATCH: solo rows %" PRIu64
                " != concurrent rows %" PRIu64 "\n",
                serving_solo_t.rows_out, serving_concurrent_t.rows_out);
    return 1;
  }

  // Tail-latency isolation: p95 of a short query alone vs under a
  // long-running scan that keeps ~100 morsels queued. Stride scheduling
  // caps how far the short query's morsels sink behind the scan's; FIFO
  // dispatch would push loaded p95 toward the full scan duration.
  constexpr size_t kShortRows = 6000;  // ~6 morsels: parallel, but short
  constexpr int kShortIters = 40;
  const PatchCollection short_view = SyntheticView(kShortRows);
  auto short_query = [&]() {
    BatchPipeline pipeline;
    pipeline.Filter(predicate).Map(Annotate);
    auto out = pipeline.RunOnPatches(short_view, serve_opts);
    DL_CHECK_OK(out.status());
    return out->size();
  };
  auto p95_of = [](std::vector<double> samples) {
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() * 95 / 100];
  };
  std::vector<double> solo_lat;
  {
    ScopedSchedulingContext scope(SchedulingContext{"dash", 1});
    for (int i = 0; i < kShortIters; ++i) {
      Stopwatch timer;
      short_query();
      solo_lat.push_back(timer.ElapsedMillis());
    }
  }
  std::atomic<bool> stop_scan{false};
  std::thread long_scan([&]() {
    ScopedSchedulingContext scope(SchedulingContext{"batch", 1});
    while (!stop_scan.load(std::memory_order_relaxed)) {
      BatchPipeline pipeline;
      pipeline.Filter(predicate).Map(Annotate);
      DL_CHECK_OK(pipeline.RunOnPatches(view, serve_opts).status());
    }
  });
  std::vector<double> loaded_lat;
  {
    ScopedSchedulingContext scope(SchedulingContext{"dash", 1});
    for (int i = 0; i < kShortIters; ++i) {
      Stopwatch timer;
      short_query();
      loaded_lat.push_back(timer.ElapsedMillis());
    }
  }
  stop_scan = true;
  long_scan.join();
  Timing short_solo_t;
  short_solo_t.best_ms = p95_of(solo_lat);
  short_solo_t.rows_out = kShortIters;
  Timing short_loaded_t;
  short_loaded_t.best_ms = p95_of(loaded_lat);
  short_loaded_t.rows_out = kShortIters;

  // In-flight dedup: 4 sessions race the same OCR predicate over the
  // same panels. With the singleflight table wired into the cache, each
  // distinct panel is inferred exactly once (one leader); everyone else
  // joins the flight or hits the cache behind it.
  constexpr int kDedupPanels = 32;
  constexpr int kDedupSessions = 4;
  const PatchCollection panels = [&]() {
    Rng rng(0xd11b0001);
    PatchCollection out;
    for (int i = 0; i < kDedupPanels; ++i) {
      Image panel(64, 64, 3);
      for (auto& b : panel.bytes()) {
        b = static_cast<uint8_t>(10 + rng.NextU64Below(20));
      }
      sim::DrawDigits(&panel, nn::BBox{4, 20, 60, 44},
                      std::to_string(100 + rng.NextU64Below(900)));
      Patch p;
      p.set_id(static_cast<PatchId>(i + 1));
      p.set_ref(ImgRef{"panels", i, kInvalidPatchId});
      p.set_pixels(std::move(panel));
      p.set_bbox(nn::BBox{0, 0, 64, 64});
      out.push_back(std::move(p));
    }
    return out;
  }();
  InferenceCache dedup_cache(8 << 20, /*num_shards=*/2, CacheAdmission::kLru);
  InflightTable inflight;
  dedup_cache.set_inflight(&inflight);
  nn::TinyOcr serving_ocr;
  nn::Device* serving_device = nn::GetDevice(nn::DeviceKind::kCpuVector);
  {
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> racers;
    for (int s = 0; s < kDedupSessions; ++s) {
      racers.emplace_back([&, s]() {
        ++ready;
        while (!go.load(std::memory_order_acquire)) {}
        // Each session walks the panels from a different offset so the
        // flights overlap instead of forming a convoy.
        for (int i = 0; i < kDedupPanels; ++i) {
          const Patch& p =
              panels[static_cast<size_t>((i + s * 8) % kDedupPanels)];
          auto text = CachedOcrText(serving_ocr, p.pixels(), p.Fingerprint(),
                                    serving_device, &dedup_cache);
          DL_CHECK_OK(text.status());
        }
      });
    }
    while (ready.load() < kDedupSessions) {}
    go.store(true, std::memory_order_release);
    for (auto& t : racers) t.join();
  }
  const InflightStats dedup_stats = inflight.Stats();
  const uint64_t dedup_evals =
      static_cast<uint64_t>(kDedupSessions) * kDedupPanels;
  const double serving_dedup_rate =
      1.0 - static_cast<double>(dedup_stats.leaders) /
                static_cast<double>(dedup_evals);

  // --- Cross-query device batch formation: 4 sessions, all-distinct ---
  // --- panels, GpuSim backend; batch former off vs on ------------------
  // Each session OCRs its own quarter of the panels, so singleflight
  // dedup never fires and every patch must be inferred. Unbatched, every
  // glyph's forward pass pays the simulated kernel-launch overhead; with
  // the former installed, concurrent sessions' patches flush as one
  // device invocation (one launch, host-vectorized per-item math) — the
  // amortization this gate measures. Results are verified equal between
  // the two runs before timing is reported.
  constexpr int kFormPanels = 64;
  constexpr int kFormSessions = 4;
  const PatchCollection form_panels = [&]() {
    Rng rng(0xba7c4001);
    PatchCollection out;
    for (int i = 0; i < kFormPanels; ++i) {
      Image panel(64, 64, 3);
      for (auto& b : panel.bytes()) {
        b = static_cast<uint8_t>(10 + rng.NextU64Below(20));
      }
      sim::DrawDigits(&panel, nn::BBox{4, 20, 60, 44},
                      std::to_string(1000 + i));
      Patch p;
      p.set_id(static_cast<PatchId>(i + 1));
      p.set_ref(ImgRef{"form_panels", i, kInvalidPatchId});
      p.set_pixels(std::move(panel));
      p.set_bbox(nn::BBox{0, 0, 64, 64});
      out.push_back(std::move(p));
    }
    return out;
  }();
  nn::Device* sim_gpu = nn::GetDevice(nn::DeviceKind::kGpuSim);
  auto ocr_wave = [&](BatchFormer* former,
                      std::vector<std::string>* texts) -> double {
    InferenceCache wave_cache(8 << 20, /*num_shards=*/2,
                              CacheAdmission::kLru);
    InflightTable wave_inflight;
    wave_cache.set_inflight(&wave_inflight);
    wave_cache.set_batch_former(former);
    texts->assign(kFormPanels, std::string());
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> sessions;
    for (int s = 0; s < kFormSessions; ++s) {
      sessions.emplace_back([&, s]() {
        ++ready;
        while (!go.load(std::memory_order_acquire)) {}
        const int per = kFormPanels / kFormSessions;
        for (int i = s * per; i < (s + 1) * per; ++i) {
          const Patch& p = form_panels[static_cast<size_t>(i)];
          auto text = CachedOcrText(serving_ocr, p.pixels(), p.Fingerprint(),
                                    sim_gpu, &wave_cache);
          DL_CHECK_OK(text.status());
          (*texts)[static_cast<size_t>(i)] = *std::move(text);
        }
      });
    }
    while (ready.load() < kFormSessions) {}
    Stopwatch wave_timer;
    go.store(true, std::memory_order_release);
    for (auto& t : sessions) t.join();
    return wave_timer.ElapsedMillis();
  };

  BatchFormer former;
  former.Configure(BatchFormerConfig{/*batch_size=*/kFormSessions,
                                     /*wait_us=*/2000});
  Timing form_unbatched_t;
  Timing form_batched_t;
  std::vector<std::string> unbatched_texts;
  std::vector<std::string> batched_texts;
  for (int rep = 0; rep < kReps; ++rep) {
    form_unbatched_t.best_ms = std::min(form_unbatched_t.best_ms,
                                        ocr_wave(nullptr, &unbatched_texts));
    form_batched_t.best_ms =
        std::min(form_batched_t.best_ms, ocr_wave(&former, &batched_texts));
    if (batched_texts != unbatched_texts) {
      std::printf("BATCHED OCR MISMATCH: batched texts differ from "
                  "unbatched on rep %d\n", rep);
      return 1;
    }
  }
  form_unbatched_t.rows_out = kFormPanels;
  form_batched_t.rows_out = kFormPanels;
  const BatchFormerStats former_stats = former.Stats();
  if (former_stats.batched_items !=
          static_cast<uint64_t>(kFormPanels) * kReps ||
      former_stats.invocations == 0 ||
      former_stats.invocations >= former_stats.batched_items) {
    std::printf("BATCH FORMER DID NOT BATCH: %" PRIu64 " invocations / %"
                PRIu64 " items\n",
                former_stats.invocations, former_stats.batched_items);
    return 1;
  }

  std::printf("\nserving: %d work units (%zu rows each), 1 vs %d sessions; "
              "short query %zu rows under 100k scan:\n",
              kServeUnits, kServeRows, kServeSessions, kShortRows);
  std::printf("%-24s %10.2f\n", "serving (1 session)", serving_solo_t.best_ms);
  std::printf("%-24s %10.2f %8.2fx\n", "serving (4 sessions)",
              serving_concurrent_t.best_ms,
              serving_solo_t.best_ms / serving_concurrent_t.best_ms);
  std::printf("%-24s %10.2f\n", "short p95 (solo)", short_solo_t.best_ms);
  std::printf("%-24s %10.2f %8.2fx slower\n", "short p95 (under scan)",
              short_loaded_t.best_ms,
              short_loaded_t.best_ms / short_solo_t.best_ms);
  std::printf("%-24s %9.1f%%  (%" PRIu64 " leaders / %" PRIu64
              " evals, %" PRIu64 " joined in-flight)\n",
              "inference dedup", 100.0 * serving_dedup_rate,
              dedup_stats.leaders, dedup_evals, dedup_stats.joined);
  std::printf("\ndevice batching: %d sessions x %d distinct panels on "
              "gpu_sim, batch<=%d:\n",
              kFormSessions, kFormPanels / kFormSessions, kFormSessions);
  std::printf("%-24s %10.2f\n", "ocr 4s (unbatched)",
              form_unbatched_t.best_ms);
  std::printf("%-24s %10.2f %8.2fx  (%" PRIu64 " invocations / %" PRIu64
              " patches, %.1f patches/batch)\n",
              "ocr 4s (batched)", form_batched_t.best_ms,
              form_unbatched_t.best_ms / form_batched_t.best_ms,
              former_stats.invocations, former_stats.batched_items,
              static_cast<double>(former_stats.batched_items) /
                  static_cast<double>(former_stats.invocations));

  const auto resolved = [](size_t requested) {
    MorselOptions o;
    o.num_threads = requested;
    return ResolveMorselWorkers(o);
  };
  WriteJson({{"filter_map_tuple", tuple_t, 1},
             {"filter_map_batch_serial", batch_t, 1},
             {"filter_map_batch_parallel", parallel_t, resolved(2)},
             {"hash_join_serial", join_serial_t, 1},
             {"hash_join_parallel", join_parallel_t, resolved(2)},
             {"hash_join_parallel_4w", join_parallel_4w_t, resolved(4)},
             {"hash_join_skew_serial", join_skew_serial_t, 1},
             {"hash_join_parallel_skew", join_skew_t, resolved(2)},
             {"group_by_serial", agg_serial_t, 1},
             {"group_by_parallel", agg_parallel_t, resolved(2)},
             {"group_by_parallel_4w", agg_parallel_4w_t, resolved(4)},
             {"serving_solo_1s", serving_solo_t, resolved(4)},
             {"serving_concurrent_4s", serving_concurrent_t, resolved(4)},
             {"serving_short_p95_solo", short_solo_t, resolved(4)},
             {"serving_short_p95_loaded", short_loaded_t, resolved(4)},
             {"serving_ocr_unbatched_4s", form_unbatched_t, kFormSessions},
             {"serving_ocr_batched_4s", form_batched_t, kFormSessions}},
            n, join_left, join_right, serving_dedup_rate);

  const double speedup = par_rate / tuple_rate;
  if (speedup < 2.0) {
    std::printf("\nWARNING: batch+parallel speedup %.2fx is below the 2x "
                "target\n", speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace deeplens

int main() {
  // A 4-worker pool must exist before ThreadPool::Global() is first
  // touched for the 4-worker cases to be real; an explicit
  // DEEPLENS_NUM_THREADS from the operator still wins (no overwrite), and
  // the per-case "workers" fields record what each case actually got.
  setenv("DEEPLENS_NUM_THREADS", "4", /*overwrite=*/0);
  return deeplens::bench::Run();
}
