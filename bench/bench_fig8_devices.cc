// Figure 8: execution-architecture comparison — vanilla CPU, vectorized
// (AVX), and (simulated) GPU — for both phases: neural-network-dominated
// ETL time per dataset, and query time on the two image-matching queries
// (q1, q4) where the matching kernel can run on any device (§7.4.2).
#include <cstdio>

#include "bench_common.h"
#include "common/clock.h"
#include "core/benchmark_queries.h"

namespace deeplens {
namespace bench {
namespace {

int Run() {
  PrintHeader("Figure 8: CPU vs AVX vs GPU for ETL and query time",
              "paper Fig. 8 (GPU wins batched ETL; mixed for query time)");

  WorkloadConfig config;
  const int scale = BenchScale();
  // q4's detection relation is the "large" matching input; q1's PC corpus
  // is the "small" one (the paper's contrast between the two).
  config.traffic.num_frames = 720 * scale;
  config.football.num_videos = 8;
  config.football.frames_per_video = 12 * scale;
  config.pc.num_images = 100 * scale;
  config.pc.num_duplicates = 10;
  config.pc.num_text_images = 20;

  // --- ETL time per device ------------------------------------------------
  // The GPU column reports *modeled* device time (wall time with the
  // host-simulated kernel compute replaced by overhead + compute/speedup;
  // see nn::Device's modeled-time clock and DESIGN.md).
  std::printf("ETL time (ms) per execution architecture:\n");
  std::printf("%-8s %12s %12s %12s\n", "device", "traffic", "football",
              "pc");
  EtlTimings timing_by_device[3];
  ScratchDir scratch("dl_fig8");
  for (int d = 0; d < 3; ++d) {
    const auto kind = static_cast<nn::DeviceKind>(d);
    nn::Device* device = nn::GetDevice(kind);
    auto workload = BenchmarkWorkload::Create(
        scratch.path() + "/" + nn::DeviceKindName(kind), config);
    DL_CHECK_OK(workload.status());
    device->ResetKernelClocks();
    EtlTimings etl;
    DL_CHECK_OK((*workload)->RunEtl(device, &etl));
    // Convert wall time to modeled device time (no-op for CPU backends).
    const double adjust_ms =
        (static_cast<double>(device->modeled_kernel_nanos()) -
         static_cast<double>(device->real_kernel_nanos())) /
        1e6;
    // The adjustment applies to the whole run; attribute proportionally.
    const double total_wall = etl.total();
    if (total_wall > 0 && adjust_ms != 0) {
      const double f = (total_wall + adjust_ms) / total_wall;
      etl.traffic_ms *= f;
      etl.football_ms *= f;
      etl.pc_ms *= f;
    }
    timing_by_device[d] = etl;
    std::printf("%-8s %12.0f %12.0f %12.0f%s\n", nn::DeviceKindName(kind),
                etl.traffic_ms, etl.football_ms, etl.pc_ms,
                kind == nn::DeviceKind::kGpuSim ? "  (modeled)" : "");

    // Keep the avx-device workload around for the query phase below.
    if (kind == nn::DeviceKind::kCpuVector) {
      std::printf("\nquery time (ms) for the image-matching queries, all-"
                  "pairs kernel per device:\n");
      std::printf("%-8s %12s %12s\n", "device", "q1(small)", "q4(large)");
      DL_CHECK_OK((*workload)->BuildOptimizedIndexes().status());
      // Query-time offload pays a cold-start cost per query (device
      // allocation + transfer of the operand relations), unlike the
      // streamed, warmed-up ETL path.
      nn::GpuSimOptions query_gpu;
      query_gpu.launch_overhead_nanos = 2'500'000;  // 2.5 ms cold start
      nn::ConfigureGpuSim(query_gpu);
      for (int qd = 0; qd < 3; ++qd) {
        const auto qkind = static_cast<nn::DeviceKind>(qd);
        nn::Device* device = nn::GetDevice(qkind);
        device->ResetKernelClocks();
        // q1 on the small PC relation: all-pairs matching on `device`.
        auto view = (*workload)->db()->GetView("pc_images");
        DL_CHECK_OK(view.status());
        Stopwatch t1;
        {
          auto left = MakeVectorSource((*view)->patches);
          auto right = MakeVectorSource((*view)->patches);
          auto pairs = AllPairsSimilarityJoin(
              left.get(), right.get(),
              (*workload)->config().q1_max_distance, device);
          DL_CHECK_OK(pairs.status());
        }
        double q1_ms = t1.ElapsedMillis() +
                       (static_cast<double>(device->modeled_kernel_nanos()) -
                        static_cast<double>(device->real_kernel_nanos())) /
                           1e6;
        // q4 on the larger detection relation: all-pairs dedup.
        device->ResetKernelClocks();
        auto q4 = (*workload)->RunQ4(false, device);
        DL_CHECK_OK(q4.status());
        const double q4_ms =
            q4->millis +
            (static_cast<double>(device->modeled_kernel_nanos()) -
             static_cast<double>(device->real_kernel_nanos())) /
                1e6;
        std::printf("%-8s %12.2f %12.2f%s\n", nn::DeviceKindName(qkind),
                    q1_ms, q4_ms,
                    qkind == nn::DeviceKind::kGpuSim ? "  (modeled)" : "");
      }
      nn::ConfigureGpuSim(nn::GpuSimOptions{});  // restore defaults
      std::printf("\n");
    }
  }

  const double cpu_total = timing_by_device[0].total();
  const double avx_total = timing_by_device[1].total();
  const double gpu_total = timing_by_device[2].total();
  std::printf("ETL speedup over vanilla CPU: avx %.1fx, gpu %.1fx\n",
              cpu_total / avx_total, cpu_total / gpu_total);
  std::printf(
      "\nexpected shape: GPU is fastest for the batched, inference-heavy\n"
      "ETL; for query-time matching the GPU's launch/transfer overhead\n"
      "makes it a loss on the small relation (q1) and a win only on the\n"
      "larger one (q4) — the paper's cost-model caveat.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace deeplens

int main() { return deeplens::bench::Run(); }
