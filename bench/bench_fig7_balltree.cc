// Figure 7: Ball-Tree join execution time as a function of the indexed
// relation's size, in low (3-d) and high (64-d) dimensionality. The
// paper's point for cost-based optimization: the growth is non-linear and
// data/dimension dependent (§7.4.1).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/clock.h"
#include "common/rng.h"
#include "index/balltree.h"

namespace deeplens {
namespace bench {
namespace {

double JoinMillis(int indexed_size, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> points(static_cast<size_t>(indexed_size) * dim);
  for (auto& v : points) v = static_cast<float>(rng.NextGaussian());
  const int num_probes = 2000;
  std::vector<float> probes(static_cast<size_t>(num_probes) * dim);
  for (auto& v : probes) v = static_cast<float>(rng.NextGaussian());
  // Radius chosen to select a small neighborhood in both dimensionalities.
  const float radius = dim <= 4 ? 0.3f : 6.0f;

  Stopwatch timer;
  BallTree tree;
  DL_CHECK_OK(tree.Build(std::move(points), dim, {}));
  std::vector<RowId> matches;
  for (int i = 0; i < num_probes; ++i) {
    matches.clear();
    tree.RangeSearch(probes.data() + static_cast<size_t>(i) * dim, radius,
                     &matches);
  }
  return timer.ElapsedMillis();
}

int Run() {
  PrintHeader("Figure 7: Ball-Tree join time vs indexed relation size",
              "paper Fig. 7 (non-linear, dimension-dependent growth)");

  std::vector<int> sizes = {1000, 2000, 4000, 8000, 16000, 32000};
  if (BenchScale() > 1) sizes.push_back(32000 * BenchScale());

  std::printf("%-12s %14s %14s\n", "indexed_size", "low_dim(3)_ms",
              "high_dim(64)_ms");
  for (int n : sizes) {
    const double low = JoinMillis(n, 3, 0xF16ull + static_cast<uint64_t>(n));
    const double high =
        JoinMillis(n, 64, 0xF17ull + static_cast<uint64_t>(n));
    std::printf("%-12d %14.1f %14.1f\n", n, low, high);
  }
  std::printf(
      "\nexpected shape: low-dimensional joins grow near n·log n (pruning\n"
      "works); high-dimensional joins grow super-linearly towards n^2 as\n"
      "the curse of dimensionality defeats pruning — the non-linearity\n"
      "that breaks naive cost models.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace deeplens

int main() { return deeplens::bench::Run(); }
