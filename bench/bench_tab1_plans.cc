// Table 1: accuracy vs runtime for the two execution orders of q4.
//   Patch, Filter, Match — filter pushdown (classical optimization)
//   Patch, Match, Filter — match everything first, filter pairs after
// The paper's counter-intuitive finding: pushing the filter down *hurts
// accuracy* because weak detections of real pedestrians are dropped
// before matching can link them to their identity (§7.4.3).
#include <cstdio>

#include "bench_common.h"
#include "core/benchmark_queries.h"

namespace deeplens {
namespace bench {
namespace {

int Run() {
  PrintHeader("Table 1: q4 plan order — accuracy vs runtime",
              "paper Tab. 1 (filter pushdown changes the accuracy profile)");

  WorkloadConfig config;
  config.traffic.num_frames = 600 * BenchScale();
  config.traffic.num_pedestrians = 16;
  config.football.num_videos = 1;
  config.football.frames_per_video = 2;
  config.pc.num_images = 8;
  config.pc.num_duplicates = 2;
  config.pc.num_text_images = 2;

  ScratchDir scratch("dl_tab1");
  auto workload = BenchmarkWorkload::Create(scratch.path(), config);
  DL_CHECK_OK(workload.status());
  DL_CHECK_OK((*workload)->RunEtl(nullptr, nullptr));

  auto filter_first = (*workload)->RunQ4PlanOrder(true);
  DL_CHECK_OK(filter_first.status());
  auto match_first = (*workload)->RunQ4PlanOrder(false);
  DL_CHECK_OK(match_first.status());

  std::printf("%-24s %8s %10s %12s\n", "execution method", "recall",
              "precision", "runtime_ms");
  std::printf("%-24s %8.2f %10.2f %12.2f\n", "Patch, Filter, Match",
              filter_first->recall, filter_first->precision,
              filter_first->runtime_ms);
  std::printf("%-24s %8.2f %10.2f %12.2f\n", "Patch, Match, Filter",
              match_first->recall, match_first->precision,
              match_first->runtime_ms);
  std::printf(
      "\npaper reference:      recall  precision  runtime\n"
      "Patch, Filter, Match    0.73       0.97    34.56\n"
      "Patch, Match, Filter    0.82       0.98    62.11\n"
      "\nexpected shape: match-before-filter has higher recall at higher\n"
      "runtime — filter pushdown is not accuracy-neutral in a VDMS.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace deeplens

int main() { return deeplens::bench::Run(); }
