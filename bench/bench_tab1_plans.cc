// Table 1: accuracy vs runtime for the two execution orders of q4.
//   Patch, Filter, Match — filter pushdown (classical optimization)
//   Patch, Match, Filter — match everything first, filter pairs after
// The paper's counter-intuitive finding: pushing the filter down *hurts
// accuracy* because weak detections of real pedestrians are dropped
// before matching can link them to their identity (§7.4.3).
//
// A second phase gates the cost-based UDF optimizer: a query written
// expensive-UDF-first must be reordered so the cheap sargable conjunct
// prunes rows before the model runs (udf_reorder_speedup), and a proxy
// cascade at a permissive confidence threshold must beat the full-model
// scan on a workload with many confidently-rejectable rows
// (cascade_speedup). Both phases verify byte-identical results before
// trusting the timings, write BENCH_plans.json for
// scripts/check_bench.py, and fail the run outright below hard floors.
// Run with --optimizer-only to skip the (slower) Table 1 workload.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/bytes.h"
#include "common/clock.h"
#include "common/rng.h"
#include "core/benchmark_queries.h"
#include "core/cost_model.h"
#include "core/database.h"
#include "core/planner.h"
#include "exec/nn_udf.h"
#include "exec/pipeline.h"
#include "sim/scene.h"

namespace deeplens {
namespace bench {
namespace {

int Run() {
  PrintHeader("Table 1: q4 plan order — accuracy vs runtime",
              "paper Tab. 1 (filter pushdown changes the accuracy profile)");

  WorkloadConfig config;
  config.traffic.num_frames = 600 * BenchScale();
  config.traffic.num_pedestrians = 16;
  config.football.num_videos = 1;
  config.football.frames_per_video = 2;
  config.pc.num_images = 8;
  config.pc.num_duplicates = 2;
  config.pc.num_text_images = 2;

  ScratchDir scratch("dl_tab1");
  auto workload = BenchmarkWorkload::Create(scratch.path(), config);
  DL_CHECK_OK(workload.status());
  DL_CHECK_OK((*workload)->RunEtl(nullptr, nullptr));

  auto filter_first = (*workload)->RunQ4PlanOrder(true);
  DL_CHECK_OK(filter_first.status());
  auto match_first = (*workload)->RunQ4PlanOrder(false);
  DL_CHECK_OK(match_first.status());

  std::printf("%-24s %8s %10s %12s\n", "execution method", "recall",
              "precision", "runtime_ms");
  std::printf("%-24s %8.2f %10.2f %12.2f\n", "Patch, Filter, Match",
              filter_first->recall, filter_first->precision,
              filter_first->runtime_ms);
  std::printf("%-24s %8.2f %10.2f %12.2f\n", "Patch, Match, Filter",
              match_first->recall, match_first->precision,
              match_first->runtime_ms);
  std::printf(
      "\npaper reference:      recall  precision  runtime\n"
      "Patch, Filter, Match    0.73       0.97    34.56\n"
      "Patch, Match, Filter    0.82       0.98    62.11\n"
      "\nexpected shape: match-before-filter has higher recall at higher\n"
      "runtime — filter pushdown is not accuracy-neutral in a VDMS.\n");
  return 0;
}

// --- Optimizer gate ---------------------------------------------------------

struct PlanCase {
  const char* name;
  double ms;
  size_t rows_out;
};

std::vector<uint8_t> SerializeAll(const PatchCollection& patches) {
  ByteBuffer buf;
  buf.PutU64(patches.size());
  for (const Patch& p : patches) p.SerializeInto(&buf);
  return buf.data();
}

// Stamps a sub-ink-threshold watermark so every panel's bytes are
// unique: the inference cache's content dedup must not collapse the view
// to a handful of distinct inputs, or the "naive" baselines measure the
// cache instead of the model.
void Watermark(Image* panel, uint32_t salt) {
  auto& bytes = panel->bytes();
  for (int k = 0; k < 4; ++k) {
    bytes[static_cast<size_t>(k)] =
        static_cast<uint8_t>(((salt >> (8 * k)) & 0xFF) % 150);
  }
}

Image DigitPanel(int digit, uint32_t salt) {
  Image panel(64, 64, 3);
  for (auto& b : panel.bytes()) b = 25;
  Watermark(&panel, salt);
  sim::DrawDigits(&panel, nn::BBox{0, 0, 64, 64}, std::to_string(digit));
  return panel;
}

Image BlankPanel(uint32_t salt) {
  Image panel(64, 64, 3);
  for (auto& b : panel.bytes()) b = 20;
  Watermark(&panel, salt);
  return panel;
}

// Every row carries a legible digit (the full model always has work to
// do) plus a cheap `bucket` attribute the optimizer can hoist.
PatchCollection ReorderView(int n) {
  PatchCollection patches;
  patches.reserve(n);
  for (int i = 0; i < n; ++i) {
    Patch p;
    p.set_id(static_cast<PatchId>(i + 1));
    p.set_ref(ImgRef{"bench_opt", i, kInvalidPatchId});
    p.set_bbox(nn::BBox{0, 0, 64, 64});
    p.set_pixels(DigitPanel(i % 10, static_cast<uint32_t>(i)));
    p.mutable_meta().Set("bucket", static_cast<int64_t>(i % 4));
    patches.push_back(std::move(p));
  }
  return patches;
}

// Mostly inkless panels: the OCR proxy's confident-reject case, where a
// cascade can skip the full model on the bulk of the view.
PatchCollection CascadeView(int n) {
  PatchCollection patches;
  patches.reserve(n);
  for (int i = 0; i < n; ++i) {
    Patch p;
    p.set_id(static_cast<PatchId>(i + 1));
    p.set_ref(ImgRef{"bench_cascade", i, kInvalidPatchId});
    p.set_bbox(nn::BBox{0, 0, 64, 64});
    if (i % 10 < 3) {
      p.set_pixels(DigitPanel((i / 10 + i % 10) % 10,
                              static_cast<uint32_t>(i)));
    } else {
      p.set_pixels(BlankPanel(static_cast<uint32_t>(i)));
    }
    patches.push_back(std::move(p));
  }
  return patches;
}

std::unique_ptr<Database> FreshDb(const std::string& root) {
  // Each measured scan gets its own database so the inference cache of
  // one phase cannot subsidize the next, and cold cost-model defaults so
  // every plan is decided the way a first-contact query would be.
  auto db = Database::Open(root);
  DL_CHECK_OK(db.status());
  CacheConfig config;
  config.budget_bytes = 16 << 20;
  (*db)->ConfigureCaches(config);
  CostModel::Global()->Clear();
  Planner::ResetPlanCacheForTest();
  return std::move(*db);
}

void WritePlansJson(const std::vector<PlanCase>& cases, double reorder_speedup,
                    double cascade_speedup, int rows) {
  std::FILE* f = std::fopen("BENCH_plans.json", "w");
  if (f == nullptr) {
    std::printf("WARNING: could not open BENCH_plans.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"tab1_plans_optimizer\",\n");
  std::fprintf(f, "  \"rows\": %d,\n", rows);
  std::fprintf(f, "  \"udf_reorder_speedup\": %.2f,\n", reorder_speedup);
  std::fprintf(f, "  \"cascade_speedup\": %.2f,\n", cascade_speedup);
  std::fprintf(f, "  \"cases\": [\n");
  for (size_t i = 0; i < cases.size(); ++i) {
    std::fprintf(f, "    {\"name\": \"%s\", \"ms\": %.3f, \"rows_out\": %zu}%s\n",
                 cases[i].name, cases[i].ms, cases[i].rows_out,
                 i + 1 == cases.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_plans.json (%zu cases)\n", cases.size());
}

int RunOptimizer() {
  PrintHeader("Cost-based UDF optimizer: reordering + proxy cascades",
              "§4 (UDF cost model; the optimizer the paper's plans assume)");
  unsetenv("DEEPLENS_CASCADE_THRESHOLD");
  const int rows = 400 * BenchScale();
  // Each rep gets its own database (cold inference cache, cold cost
  // model) and the best rep is reported: single cold runs are a few ms
  // and scheduler noise on a small container easily doubles one of them.
  constexpr int kReps = 3;
  std::vector<PlanCase> cases;

  // Phase 1: conjunct reordering. The query is written expensive-first —
  // OCR on every row, then a 25%-selective attribute check. The naive
  // evaluator runs it as written; the planner must hoist the attribute
  // conjunct so the model only sees surviving rows.
  double naive_ms = 1e300, reordered_ms = 1e300;
  std::vector<uint8_t> naive_bytes, reordered_bytes;
  {
    size_t out_rows = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      ScratchDir scratch("dl_plans_naive" + std::to_string(rep));
      auto db = FreshDb(scratch.path());
      ViewCache view;
      view.patches = ReorderView(rows);
      ExprPtr pred = And(Eq(OcrTextUdf(0, db->ocr(), db->inference_cache()),
                            Lit("7")),
                         Eq(Attr("bucket"), Lit(int64_t{1})));
      Stopwatch sw;
      auto got = ParallelSelect(view.patches, pred);
      const double ms = sw.ElapsedMillis();
      DL_CHECK_OK(got.status());
      naive_bytes = SerializeAll(*got);
      naive_ms = ms < naive_ms ? ms : naive_ms;
      out_rows = got->size();
    }
    cases.push_back({"udf_first_naive", naive_ms, out_rows});
  }
  {
    size_t out_rows = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      ScratchDir scratch("dl_plans_reorder" + std::to_string(rep));
      auto db = FreshDb(scratch.path());
      ViewCache view;
      view.patches = ReorderView(rows);
      ExprPtr pred = And(Eq(OcrTextUdf(0, db->ocr(), db->inference_cache()),
                            Lit("7")),
                         Eq(Attr("bucket"), Lit(int64_t{1})));
      PlanExplanation plan;
      Stopwatch sw;
      auto got = Planner::ExecuteScan(view, pred, &plan);
      const double ms = sw.ElapsedMillis();
      DL_CHECK_OK(got.status());
      reordered_bytes = SerializeAll(*got);
      reordered_ms = ms < reordered_ms ? ms : reordered_ms;
      out_rows = got->size();
      if (!plan.reordered) {
        std::fprintf(
            stderr,
            "FAIL: planner did not reorder the UDF-first query\n  %s\n",
            plan.description.c_str());
        return 1;
      }
    }
    cases.push_back({"udf_reordered", reordered_ms, out_rows});
  }
  if (naive_bytes != reordered_bytes) {
    std::fprintf(stderr, "FAIL: reordered scan changed the result rows\n");
    return 1;
  }

  // Phase 2: proxy cascade. 70% of the view is inkless, which the OCR
  // proxy rejects with 0.95 confidence; at threshold 0.25 the full model
  // only runs on inky rows (plus the audit slice).
  double cascade_off_ms = 1e300, cascade_on_ms = 1e300;
  std::vector<uint8_t> off_bytes, on_bytes;
  {
    size_t out_rows = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      ScratchDir scratch("dl_plans_cascade_off" + std::to_string(rep));
      auto db = FreshDb(scratch.path());
      ViewCache view;
      view.patches = CascadeView(rows);
      ExprPtr pred = Eq(OcrTextUdf(0, db->ocr(), db->inference_cache()),
                        Lit("7"));
      PlanExplanation plan;
      Stopwatch sw;
      auto got = Planner::ExecuteScan(view, pred, &plan);
      const double ms = sw.ElapsedMillis();
      DL_CHECK_OK(got.status());
      off_bytes = SerializeAll(*got);
      cascade_off_ms = ms < cascade_off_ms ? ms : cascade_off_ms;
      out_rows = got->size();
      if (plan.cascade.used) {
        std::fprintf(stderr, "FAIL: cascade engaged with the knob unset\n");
        return 1;
      }
    }
    cases.push_back({"cascade_off", cascade_off_ms, out_rows});
  }
  {
    size_t out_rows = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      ScratchDir scratch("dl_plans_cascade_on" + std::to_string(rep));
      setenv("DEEPLENS_CASCADE_THRESHOLD", "0.25", 1);
      auto db = FreshDb(scratch.path());
      ViewCache view;
      view.patches = CascadeView(rows);
      ExprPtr pred = Eq(OcrTextUdf(0, db->ocr(), db->inference_cache()),
                        Lit("7"));
      PlanExplanation plan;
      Stopwatch sw;
      auto got = Planner::ExecuteScan(view, pred, &plan);
      const double ms = sw.ElapsedMillis();
      unsetenv("DEEPLENS_CASCADE_THRESHOLD");
      DL_CHECK_OK(got.status());
      on_bytes = SerializeAll(*got);
      cascade_on_ms = ms < cascade_on_ms ? ms : cascade_on_ms;
      out_rows = got->size();
      if (!plan.cascade.used) {
        std::fprintf(stderr,
                     "FAIL: cascade did not engage at threshold 0.25\n");
        return 1;
      }
      if (rep + 1 == kReps) {
        std::printf("cascade accounting: proxy_evals=%llu skips=%llu "
                    "full_evals=%llu audits=%llu overturns=%llu "
                    "est_precision=%.2f est_recall=%.2f\n",
                    (unsigned long long)plan.cascade.proxy_evals,
                    (unsigned long long)plan.cascade.proxy_skips,
                    (unsigned long long)plan.cascade.full_evals,
                    (unsigned long long)plan.cascade.audits,
                    (unsigned long long)plan.cascade.audit_overturns,
                    plan.cascade.est_precision, plan.cascade.est_recall);
      }
    }
    cases.push_back({"cascade_on_0.25", cascade_on_ms, out_rows});
  }
  if (off_bytes != on_bytes) {
    std::fprintf(stderr,
                 "FAIL: cascade changed the result rows on an exact "
                 "workload\n");
    return 1;
  }

  const double reorder_speedup = naive_ms / reordered_ms;
  const double cascade_speedup = cascade_off_ms / cascade_on_ms;
  std::printf("\n%-24s %12s\n", "case", "runtime_ms");
  for (const auto& c : cases) {
    std::printf("%-24s %12.3f  (%zu rows)\n", c.name, c.ms, c.rows_out);
  }
  std::printf("\nudf_reorder_speedup: %.2fx (floor 2.0x)\n", reorder_speedup);
  std::printf("cascade_speedup:     %.2fx (floor 1.2x)\n", cascade_speedup);
  WritePlansJson(cases, reorder_speedup, cascade_speedup, rows);
  if (reorder_speedup < 2.0) {
    std::fprintf(stderr, "FAIL: udf_reorder_speedup %.2f below 2.0x floor\n",
                 reorder_speedup);
    return 1;
  }
  if (cascade_speedup < 1.2) {
    std::fprintf(stderr, "FAIL: cascade_speedup %.2f below 1.2x floor\n",
                 cascade_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace deeplens

int main(int argc, char** argv) {
  const bool optimizer_only =
      argc > 1 && std::strcmp(argv[1], "--optimizer-only") == 0;
  if (!optimizer_only) {
    const int rc = deeplens::bench::Run();
    if (rc != 0) return rc;
  }
  return deeplens::bench::RunOptimizer();
}
