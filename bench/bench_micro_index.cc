// Micro-benchmarks for the index structures: point lookups, range scans,
// and similarity probes — the per-operation constants behind Figure 4.
#include <benchmark/benchmark.h>

#include "common/bytes.h"
#include "common/rng.h"
#include "index/balltree.h"
#include "index/btree.h"
#include "index/hash_index.h"
#include "index/rtree.h"

namespace deeplens {
namespace {

void BM_HashLookup(benchmark::State& state) {
  HashIndex index;
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  for (uint64_t i = 0; i < n; ++i) {
    index.Insert(Slice(EncodeKeyU64(i)), static_cast<RowId>(i));
  }
  Rng rng(1);
  std::vector<RowId> out;
  for (auto _ : state) {
    out.clear();
    index.Lookup(Slice(EncodeKeyU64(rng.NextU64Below(n))), &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_HashLookup)->Arg(1000)->Arg(100000);

void BM_BTreeLookup(benchmark::State& state) {
  BPlusTree tree;
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  for (uint64_t i = 0; i < n; ++i) {
    tree.Insert(Slice(EncodeKeyU64(i)), static_cast<RowId>(i));
  }
  Rng rng(2);
  std::vector<RowId> out;
  for (auto _ : state) {
    out.clear();
    tree.Lookup(Slice(EncodeKeyU64(rng.NextU64Below(n))), &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_BTreeLookup)->Arg(1000)->Arg(100000);

void BM_BTreeRangeScan100(benchmark::State& state) {
  BPlusTree tree;
  const uint64_t n = 100000;
  for (uint64_t i = 0; i < n; ++i) {
    tree.Insert(Slice(EncodeKeyU64(i)), static_cast<RowId>(i));
  }
  Rng rng(3);
  std::vector<RowId> out;
  for (auto _ : state) {
    out.clear();
    const uint64_t lo = rng.NextU64Below(n - 100);
    tree.RangeScan(Slice(EncodeKeyU64(lo)), Slice(EncodeKeyU64(lo + 99)),
                   &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_BTreeRangeScan100);

void BM_RTreeIntersects(benchmark::State& state) {
  RTree tree;
  Rng rng(4);
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    const float x = static_cast<float>(rng.NextUniform(0, 1000));
    const float y = static_cast<float>(rng.NextUniform(0, 1000));
    tree.Insert(Rect{x, y, x + 10, y + 10}, static_cast<RowId>(i));
  }
  std::vector<RowId> out;
  for (auto _ : state) {
    out.clear();
    const float x = static_cast<float>(rng.NextUniform(0, 1000));
    const float y = static_cast<float>(rng.NextUniform(0, 1000));
    tree.SearchIntersects(Rect{x, y, x + 20, y + 20}, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_RTreeIntersects)->Arg(1000)->Arg(50000);

void BM_BallTreeRangeSearch(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(1));
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<float> points(n * dim);
  for (auto& v : points) v = static_cast<float>(rng.NextGaussian());
  BallTree tree;
  DL_CHECK_OK(tree.Build(std::move(points), dim, {}));
  std::vector<float> query(dim);
  std::vector<RowId> out;
  for (auto _ : state) {
    for (auto& v : query) v = static_cast<float>(rng.NextGaussian());
    out.clear();
    tree.RangeSearch(query.data(), dim <= 4 ? 0.3f : 6.0f, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel("dim=" + std::to_string(dim));
}
BENCHMARK(BM_BallTreeRangeSearch)
    ->Args({10000, 3})
    ->Args({10000, 64})
    ->Args({100000, 3});

}  // namespace
}  // namespace deeplens

BENCHMARK_MAIN();
