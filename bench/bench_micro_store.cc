// Microbenchmark: the materialized-view storage layer, legacy
// RecordStore format vs the chunked columnar format (storage/columnar/).
// Phases: (1) bulk write of the same bucketed patch dataset into both
// formats, (2) repeated full scans (LoadAll) of each file, (3) the
// headline selective scan — a 10%-selectivity range predicate on a
// monotone meta key, where the legacy format must read and decode the
// whole file before filtering while the columnar planner path prunes
// the non-matching chunks with zone maps and never touches their bytes.
// Results are verified byte-identical across formats (full scans) and
// across scan strategies (selective scans) before any timing is
// reported; all timings land in BENCH_store.json and the run fails
// unless the pruned columnar scan beats the legacy selective scan by
// 2x with zone maps pruning at least half the chunks.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/clock.h"
#include "common/rng.h"
#include "core/database.h"
#include "core/planner.h"
#include "etl/materialize.h"
#include "exec/expression.h"

namespace deeplens {
namespace bench {
namespace {

constexpr int kRowsBase = 20000;
constexpr int kChunkRows = 500;
constexpr int kFullScanReps = 3;
constexpr int kSelectiveReps = 5;
// Acceptance floors enforced by the bench itself (the CI gate in
// scripts/check_bench.py carries slightly higher blessed baselines).
constexpr double kRequiredPrunedSpeedup = 2.0;
constexpr double kRequiredPruneRatio = 0.5;

struct CaseTiming {
  const char* name;
  double ms = 0.0;
  uint64_t rows_out = 0;
};

// Bucketed dataset: "bucket" ascends with the row id (the natural shape
// of frame-ordered video metadata), so a range predicate on it is
// clustered and zone maps can prune. Labels come from a small alphabet
// (dictionary-encoded), and a fraction of rows carry pixels/features so
// per-row decode cost is realistic rather than meta-only.
PatchCollection BucketedDataset(int n) {
  static const char* kLabels[] = {"car", "person", "bus", "bicycle"};
  Rng rng(0x57073);
  PatchCollection out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Patch p;
    p.set_id(static_cast<PatchId>(i + 1));
    p.set_ref(ImgRef{"cam0", i, kInvalidPatchId});
    p.set_bbox(nn::BBox{static_cast<int>(rng.NextU64Below(64)),
                        static_cast<int>(rng.NextU64Below(64)), 96, 96});
    p.mutable_meta().Set("bucket", static_cast<int64_t>(i / 100));
    p.mutable_meta().Set("label",
                         std::string(kLabels[rng.NextU64Below(4)]));
    p.mutable_meta().Set(
        "score", static_cast<double>(rng.NextU64Below(1000)) / 1000.0);
    p.mutable_meta().Set(meta_keys::kFrameNo, static_cast<int64_t>(i));
    if (i % 16 == 0) {
      Image img(24, 24, 3);
      for (auto& b : img.bytes()) {
        b = static_cast<uint8_t>(rng.NextU64Below(256));
      }
      p.set_pixels(std::move(img));
    }
    if (i % 32 == 0) {
      p.set_features(Tensor::FromVector(
          {static_cast<float>(i), 0.5f, -1.0f, 2.25f}));
    }
    out.push_back(std::move(p));
  }
  return out;
}

bool SamePatches(const PatchCollection& a, const PatchCollection& b,
                 const char* what) {
  if (a.size() != b.size()) {
    std::printf("FAIL: %s row count mismatch (%zu vs %zu)\n", what, a.size(),
                b.size());
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    ByteBuffer ba, bb;
    a[i].SerializeInto(&ba);
    b[i].SerializeInto(&bb);
    const Slice sa = ba.AsSlice();
    const Slice sb = bb.AsSlice();
    if (sa.size() != sb.size() ||
        std::memcmp(sa.data(), sb.data(), sa.size()) != 0) {
      std::printf("FAIL: %s differs at row %zu (id %" PRIu64 ")\n", what, i,
                  static_cast<uint64_t>(a[i].id()));
      return false;
    }
  }
  return true;
}

double TimedWrite(const std::string& path, MaterializedView::Format format,
                  const PatchCollection& rows, uint64_t* bytes) {
  Stopwatch sw;
  auto view = MaterializedView::Open(path, format);
  DL_CHECK_OK(view.status());
  for (const Patch& p : rows) {
    DL_CHECK_OK((*view)->Append(p));
  }
  DL_CHECK_OK((*view)->Flush());
  const double ms = sw.ElapsedMillis();
  *bytes = (*view)->storage_bytes();
  return ms;
}

void WriteJson(const std::vector<CaseTiming>& cases, double pruned_speedup,
               double prune_ratio, double full_scan_speedup,
               double write_ratio, double compression_ratio, int rows,
               int chunks_total, int chunks_pruned) {
  std::FILE* f = std::fopen("BENCH_store.json", "w");
  if (f == nullptr) {
    std::printf("WARNING: could not open BENCH_store.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_store\",\n");
  std::fprintf(f, "  \"rows\": %d,\n  \"chunk_rows\": %d,\n", rows,
               kChunkRows);
  std::fprintf(f, "  \"chunks_total\": %d,\n  \"chunks_pruned\": %d,\n",
               chunks_total, chunks_pruned);
  std::fprintf(f, "  \"columnar_scan_speedup\": %.2f,\n", pruned_speedup);
  std::fprintf(f, "  \"zonemap_prune_ratio\": %.3f,\n", prune_ratio);
  std::fprintf(f, "  \"columnar_full_scan_speedup\": %.2f,\n",
               full_scan_speedup);
  std::fprintf(f, "  \"columnar_write_ratio\": %.2f,\n", write_ratio);
  std::fprintf(f, "  \"columnar_compression_ratio\": %.2f,\n",
               compression_ratio);
  std::fprintf(f, "  \"cases\": [\n");
  for (size_t i = 0; i < cases.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ms\": %.3f, \"rows_out\": "
                 "%" PRIu64 "}%s\n",
                 cases[i].name, cases[i].ms, cases[i].rows_out,
                 i + 1 == cases.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_store.json (%zu cases)\n", cases.size());
}

int Run() {
  PrintHeader("micro: materialized-view storage (legacy vs columnar)",
              "the §4.1 Materialize path; no paper figure");

  // Pin the chunk geometry so prune ratios are reproducible across
  // machines, and pin the view format so PersistView below is columnar
  // regardless of ambient environment.
  setenv("DEEPLENS_COLUMNAR_CHUNK_ROWS", std::to_string(kChunkRows).c_str(),
         1);
  setenv("DEEPLENS_VIEW_FORMAT", "columnar", 1);

  const int rows = kRowsBase * BenchScale();
  ScratchDir scratch("dl_bench_store");
  const PatchCollection dataset = BucketedDataset(rows);
  std::vector<CaseTiming> cases;

  // --- Phase 1: bulk write, both formats --------------------------------
  uint64_t legacy_bytes = 0;
  uint64_t columnar_bytes = 0;
  const double legacy_write_ms = TimedWrite(
      scratch.path() + "/view_legacy", MaterializedView::Format::kLegacy,
      dataset, &legacy_bytes);
  const double columnar_write_ms = TimedWrite(
      scratch.path() + "/view_columnar", MaterializedView::Format::kColumnar,
      dataset, &columnar_bytes);
  cases.push_back({"write_legacy", legacy_write_ms,
                   static_cast<uint64_t>(rows)});
  cases.push_back({"write_columnar", columnar_write_ms,
                   static_cast<uint64_t>(rows)});
  const double write_ratio =
      columnar_write_ms > 0.0 ? legacy_write_ms / columnar_write_ms : 0.0;
  const double compression_ratio =
      columnar_bytes > 0
          ? static_cast<double>(legacy_bytes) /
                static_cast<double>(columnar_bytes)
          : 0.0;
  std::printf("write   legacy %8.1f ms (%8" PRIu64 " B)   columnar %8.1f ms "
              "(%8" PRIu64 " B)\n",
              legacy_write_ms, legacy_bytes, columnar_write_ms,
              columnar_bytes);

  auto legacy = MaterializedView::Open(scratch.path() + "/view_legacy");
  auto columnar = MaterializedView::Open(scratch.path() + "/view_columnar");
  DL_CHECK_OK(legacy.status());
  DL_CHECK_OK(columnar.status());

  // Correctness before speed: both files must round-trip the dataset
  // byte-identically, or the timings compare different work.
  {
    auto from_legacy = (*legacy)->LoadAll();
    auto from_columnar = (*columnar)->LoadAll();
    DL_CHECK_OK(from_legacy.status());
    DL_CHECK_OK(from_columnar.status());
    if (!SamePatches(*from_legacy, dataset, "legacy round-trip") ||
        !SamePatches(*from_columnar, dataset, "columnar round-trip")) {
      return 1;
    }
  }

  // --- Phase 2: full scans ----------------------------------------------
  double legacy_full_ms = 0.0;
  double columnar_full_ms = 0.0;
  for (int rep = 0; rep < kFullScanReps; ++rep) {
    Stopwatch sw;
    auto loaded = (*legacy)->LoadAll();
    DL_CHECK_OK(loaded.status());
    legacy_full_ms += sw.ElapsedMillis();
    sw.Reset();
    auto loaded2 = (*columnar)->LoadAll();
    DL_CHECK_OK(loaded2.status());
    columnar_full_ms += sw.ElapsedMillis();
  }
  legacy_full_ms /= kFullScanReps;
  columnar_full_ms /= kFullScanReps;
  cases.push_back({"full_scan_legacy", legacy_full_ms,
                   static_cast<uint64_t>(rows)});
  cases.push_back({"full_scan_columnar", columnar_full_ms,
                   static_cast<uint64_t>(rows)});
  const double full_scan_speedup =
      columnar_full_ms > 0.0 ? legacy_full_ms / columnar_full_ms : 0.0;
  std::printf("full    legacy %8.1f ms              columnar %8.1f ms "
              "(%.2fx)\n",
              legacy_full_ms, columnar_full_ms, full_scan_speedup);

  // --- Phase 3: selective scan (the zone-map headline) ------------------
  // Range predicate over the middle 10% of the monotone bucket key.
  const int64_t lo_bucket = static_cast<int64_t>(rows / 2 / 100);
  const int64_t hi_bucket =
      static_cast<int64_t>((rows / 2 + rows / 10) / 100);
  const ExprPtr predicate = And(Ge(Attr("bucket"), Lit(lo_bucket)),
                                Lt(Attr("bucket"), Lit(hi_bucket)));

  // Columnar side goes through the Database attach path so the scan runs
  // the real planner pipeline (pushdown extraction, chunk selection,
  // async decode-ahead), not a hand-rolled reader loop.
  auto db_or = Database::Open(scratch.path() + "/db");
  DL_CHECK_OK(db_or.status());
  Database* db = db_or->get();
  DL_CHECK_OK(db->RegisterView("store_bench", dataset));
  DL_CHECK_OK(db->PersistView("store_bench"));
  DL_CHECK_OK(db->AttachPersistedView("store_bench"));
  auto attached = db->GetView("store_bench");
  DL_CHECK_OK(attached.status());

  // Warm both paths once and check the strategies agree byte-for-byte.
  PlanExplanation plan;
  uint64_t selected_rows = 0;
  {
    auto pruned = Planner::ExecuteScan(**attached, predicate, &plan);
    DL_CHECK_OK(pruned.status());
    auto loaded = (*legacy)->LoadAll();
    DL_CHECK_OK(loaded.status());
    ViewCache resident;
    resident.patches = std::move(*loaded);
    PlanExplanation oracle_plan;
    auto oracle = Planner::ExecuteScan(resident, predicate, &oracle_plan);
    DL_CHECK_OK(oracle.status());
    if (!SamePatches(*pruned, *oracle, "selective scan")) return 1;
    selected_rows = pruned->size();
  }
  const int chunks_total = static_cast<int>(plan.columnar.chunks_total);
  const int chunks_pruned = static_cast<int>(plan.columnar.chunks_pruned);
  const double prune_ratio =
      chunks_total > 0 ? static_cast<double>(chunks_pruned) /
                             static_cast<double>(chunks_total)
                       : 0.0;

  double legacy_sel_ms = 0.0;
  double columnar_sel_ms = 0.0;
  for (int rep = 0; rep < kSelectiveReps; ++rep) {
    // Legacy has no zone maps: every selective scan pays a full file
    // read + decode before the planner filters the resident rows.
    Stopwatch sw;
    auto loaded = (*legacy)->LoadAll();
    DL_CHECK_OK(loaded.status());
    ViewCache resident;
    resident.patches = std::move(*loaded);
    PlanExplanation ignored;
    auto filtered = Planner::ExecuteScan(resident, predicate, &ignored);
    DL_CHECK_OK(filtered.status());
    legacy_sel_ms += sw.ElapsedMillis();

    sw.Reset();
    auto pruned = Planner::ExecuteScan(**attached, predicate, &plan);
    DL_CHECK_OK(pruned.status());
    columnar_sel_ms += sw.ElapsedMillis();
  }
  legacy_sel_ms /= kSelectiveReps;
  columnar_sel_ms /= kSelectiveReps;
  cases.push_back({"selective_scan_legacy", legacy_sel_ms, selected_rows});
  cases.push_back({"selective_scan_columnar_pruned", columnar_sel_ms,
                   selected_rows});
  const double pruned_speedup =
      columnar_sel_ms > 0.0 ? legacy_sel_ms / columnar_sel_ms : 0.0;
  std::printf("select  legacy %8.1f ms              columnar %8.1f ms "
              "(%.2fx, pruned %d/%d chunks)\n",
              legacy_sel_ms, columnar_sel_ms, pruned_speedup, chunks_pruned,
              chunks_total);

  WriteJson(cases, pruned_speedup, prune_ratio, full_scan_speedup,
            write_ratio, compression_ratio, rows, chunks_total,
            chunks_pruned);

  if (pruned_speedup < kRequiredPrunedSpeedup) {
    std::printf("\nFAIL: pruned columnar scan speedup %.2fx is below the "
                "%.1fx target\n",
                pruned_speedup, kRequiredPrunedSpeedup);
    return 1;
  }
  if (prune_ratio < kRequiredPruneRatio) {
    std::printf("\nFAIL: zone maps pruned only %d/%d chunks (%.2f < %.2f)\n",
                chunks_pruned, chunks_total, prune_ratio,
                kRequiredPruneRatio);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace deeplens

int main() { return deeplens::bench::Run(); }
