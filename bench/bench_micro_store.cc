// Micro-benchmarks for the record store: put/get/scan throughput and
// reopen (log replay) cost.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <filesystem>

#include "common/bytes.h"
#include "common/rng.h"
#include "storage/record_store.h"

namespace deeplens {
namespace {

std::string ScratchPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("dl_micro_store_" + name + "_" + std::to_string(::getpid())))
      .string();
}

void BM_RecordStorePut(benchmark::State& state) {
  const std::string path = ScratchPath("put");
  std::filesystem::remove(path);
  auto store = RecordStore::Open(path);
  std::vector<uint8_t> value(static_cast<size_t>(state.range(0)), 0x5A);
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        (*store)->Put(Slice(EncodeKeyU64(key++)), Slice(value)));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  store->reset();
  std::filesystem::remove(path);
}
BENCHMARK(BM_RecordStorePut)->Arg(128)->Arg(4096)->Arg(65536);

void BM_RecordStoreGet(benchmark::State& state) {
  const std::string path = ScratchPath("get");
  std::filesystem::remove(path);
  auto store = RecordStore::Open(path);
  std::vector<uint8_t> value(4096, 0x5A);
  const uint64_t n = 2000;
  for (uint64_t k = 0; k < n; ++k) {
    DL_CHECK_OK((*store)->Put(Slice(EncodeKeyU64(k)), Slice(value)));
  }
  DL_CHECK_OK((*store)->Flush());
  Rng rng(7);
  for (auto _ : state) {
    auto got = (*store)->Get(Slice(EncodeKeyU64(rng.NextU64Below(n))));
    benchmark::DoNotOptimize(got);
  }
  store->reset();
  std::filesystem::remove(path);
}
BENCHMARK(BM_RecordStoreGet);

void BM_RecordStoreScan(benchmark::State& state) {
  const std::string path = ScratchPath("scan");
  std::filesystem::remove(path);
  auto store = RecordStore::Open(path);
  std::vector<uint8_t> value(512, 0x5A);
  for (uint64_t k = 0; k < 5000; ++k) {
    DL_CHECK_OK((*store)->Put(Slice(EncodeKeyU64(k)), Slice(value)));
  }
  for (auto _ : state) {
    uint64_t count = 0;
    DL_CHECK_OK((*store)->Scan(Slice(EncodeKeyU64(1000)),
                               Slice(EncodeKeyU64(1999)),
                               [&](const Slice&, const Slice&) {
                                 ++count;
                                 return true;
                               }));
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  store->reset();
  std::filesystem::remove(path);
}
BENCHMARK(BM_RecordStoreScan);

void BM_RecordStoreReplay(benchmark::State& state) {
  const std::string path = ScratchPath("replay");
  std::filesystem::remove(path);
  {
    auto store = RecordStore::Open(path);
    std::vector<uint8_t> value(256, 0x11);
    for (uint64_t k = 0; k < static_cast<uint64_t>(state.range(0)); ++k) {
      DL_CHECK_OK((*store)->Put(Slice(EncodeKeyU64(k)), Slice(value)));
    }
  }
  for (auto _ : state) {
    auto store = RecordStore::Open(path);
    benchmark::DoNotOptimize(store);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  std::filesystem::remove(path);
}
BENCHMARK(BM_RecordStoreReplay)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace deeplens

BENCHMARK_MAIN();
