// Figure 4: query time with and without indexes for q1–q6 ("DeepLens
// significantly speeds up query time by using indexes; matching queries
// by up to 600x"). ETL runs once and is excluded — this is the paper's
// "Query time" vs "ETL time" separation (§7.2).
#include <cstdio>

#include "bench_common.h"
#include "core/benchmark_queries.h"

namespace deeplens {
namespace bench {
namespace {

int Run() {
  PrintHeader("Figure 4: query time, no-index baseline vs indexed",
              "paper Fig. 4 (up to 612x for matching queries)");

  WorkloadConfig config;
  const int scale = BenchScale();
  config.traffic.num_frames = 600 * scale;
  config.football.frames_per_video = 24 * scale;
  config.pc.num_images = 300 * scale;
  config.pc.num_duplicates = 30;
  config.pc.num_text_images = 60;

  ScratchDir scratch("dl_fig4");
  auto workload = BenchmarkWorkload::Create(scratch.path(), config);
  DL_CHECK_OK(workload.status());
  EtlTimings etl;
  DL_CHECK_OK((*workload)->RunEtl(nullptr, &etl));
  std::printf("ETL (excluded from query time): %.0f ms total\n\n",
              etl.total());

  struct Row {
    QueryRun baseline;
    QueryRun optimized;
  };
  Row rows[6];

  DL_CHECK_OK((*workload)->DropAllIndexes());
  for (int q = 1; q <= 6; ++q) {
    auto run = (*workload)->RunQuery(q, false);
    DL_CHECK_OK(run.status());
    rows[q - 1].baseline = *run;
  }
  auto build_ms = (*workload)->BuildOptimizedIndexes();
  DL_CHECK_OK(build_ms.status());
  for (int q = 1; q <= 6; ++q) {
    auto run = (*workload)->RunQuery(q, true);
    DL_CHECK_OK(run.status());
    rows[q - 1].optimized = *run;
  }

  std::printf("%-4s %14s %14s %10s %10s\n", "q", "baseline_ms",
              "indexed_ms", "speedup", "results");
  for (int q = 1; q <= 6; ++q) {
    const Row& row = rows[q - 1];
    std::printf("q%-3d %14.2f %14.2f %9.1fx %10llu\n", q,
                row.baseline.millis, row.optimized.millis,
                row.optimized.millis > 0
                    ? row.baseline.millis / row.optimized.millis
                    : 0.0,
                static_cast<unsigned long long>(row.optimized.result_count));
  }
  std::printf("(index build cost, amortized across queries: %.1f ms)\n",
              *build_ms);
  std::printf(
      "\nexpected shape: the image-matching queries (q1, q4) and the join\n"
      "queries (q3 via lineage, q6 via frame index) gain the most; q5's\n"
      "predicate gains little (paper: \"does not benefit from any of the\n"
      "available indexes\"); speedups grow with DEEPLENS_BENCH_SCALE.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace deeplens

int main() { return deeplens::bench::Run(); }
