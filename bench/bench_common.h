// Shared helpers for the figure/table benchmark harnesses.
#pragma once

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

namespace deeplens {
namespace bench {

/// Scratch directory for a benchmark run (removed on destruction).
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name) {
    path_ = (std::filesystem::temp_directory_path() /
             (name + "_" + std::to_string(::getpid())))
                .string();
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Scale multiplier: DEEPLENS_BENCH_SCALE=N multiplies dataset sizes
/// (default 1 = laptop scale; the paper-scale cardinalities are reached
/// around 40–60 depending on the dataset).
inline int BenchScale() {
  const char* env = std::getenv("DEEPLENS_BENCH_SCALE");
  if (env == nullptr) return 1;
  const int v = std::atoi(env);
  return v >= 1 ? v : 1;
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("\n=== %s ===\n", title);
  std::printf("(reproduces %s; shapes comparable, absolute numbers are\n"
              " machine/simulator dependent — see EXPERIMENTS.md)\n\n",
              paper_ref);
}

}  // namespace bench
}  // namespace deeplens
