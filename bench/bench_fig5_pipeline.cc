// Figure 5: full pipeline runtime — ETL plus query plus *on-the-fly*
// index construction — optimized DeepLens (DL) vs baseline (BL). Several
// queries win even when the index is built inside the query (paper §7.3).
#include <cstdio>

#include "bench_common.h"
#include "core/benchmark_queries.h"

namespace deeplens {
namespace bench {
namespace {

int Run() {
  PrintHeader("Figure 5: pipeline runtime incl. on-the-fly indexing",
              "paper Fig. 5 (DL vs BL with ETL and index build included)");

  WorkloadConfig config;
  const int scale = BenchScale();
  config.traffic.num_frames = 480 * scale;
  config.football.frames_per_video = 20 * scale;
  config.pc.num_images = 260 * scale;
  config.pc.num_duplicates = 26;
  config.pc.num_text_images = 50;

  ScratchDir scratch("dl_fig5");
  auto workload = BenchmarkWorkload::Create(scratch.path(), config);
  DL_CHECK_OK(workload.status());
  EtlTimings etl;
  DL_CHECK_OK((*workload)->RunEtl(nullptr, &etl));
  const double etl_ms = etl.total();

  // BL: no persistent indexes, baseline operators. DL: optimized plans;
  // q1's Ball-Tree is built on the fly *inside* the query (its build time
  // is part of the measured query time); the metadata indexes are built
  // here and charged to the DL total.
  double bl_query[6], dl_query[6];
  DL_CHECK_OK((*workload)->DropAllIndexes());
  for (int q = 1; q <= 6; ++q) {
    auto run = (*workload)->RunQuery(q, false);
    DL_CHECK_OK(run.status());
    bl_query[q - 1] = run->millis;
  }
  auto build_ms = (*workload)->BuildOptimizedIndexes();
  DL_CHECK_OK(build_ms.status());
  for (int q = 1; q <= 6; ++q) {
    auto run = (*workload)->RunQuery(q, true);
    DL_CHECK_OK(run.status());
    dl_query[q - 1] = run->millis;
  }

  std::printf("shared ETL: %.0f ms; DL index build: %.1f ms\n\n", etl_ms,
              *build_ms);
  std::printf("%-4s %16s %16s %10s\n", "q", "BL_total_ms", "DL_total_ms",
              "speedup");
  for (int q = 1; q <= 6; ++q) {
    const double bl = etl_ms + bl_query[q - 1];
    const double dl = etl_ms + *build_ms + dl_query[q - 1];
    std::printf("q%-3d %16.1f %16.1f %9.2fx\n", q, bl, dl, bl / dl);
  }
  std::printf(
      "\nexpected shape: indexing overhead is small relative to the\n"
      "compute-intensive ETL, so DL wins or ties even with index builds\n"
      "charged to the query (paper: q1 ~5x, q4 ~3.5x at paper scale).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace deeplens

int main() { return deeplens::bench::Run(); }
