// Micro-benchmarks for the compute kernels: scalar vs vectorized variants
// and the im2col+matmul convolution path — the per-op constants behind
// the Figure 8 device comparison.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "nn/layers.h"
#include "tensor/ops.h"

namespace deeplens {
namespace {

std::vector<float> RandomVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.NextGaussian());
  return v;
}

void BM_MatmulScalar(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto a = RandomVec(n * n, 1);
  auto b = RandomVec(n * n, 2);
  std::vector<float> c(n * n);
  for (auto _ : state) {
    ops::MatmulScalar(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_MatmulScalar)->Arg(32)->Arg(128);

void BM_MatmulVector(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto a = RandomVec(n * n, 3);
  auto b = RandomVec(n * n, 4);
  std::vector<float> c(n * n);
  for (auto _ : state) {
    ops::MatmulVector(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_MatmulVector)->Arg(32)->Arg(128);

void BM_L2SquaredScalar(benchmark::State& state) {
  auto a = RandomVec(64, 5);
  auto b = RandomVec(64, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::L2SquaredScalar(a.data(), b.data(), 64));
  }
}
BENCHMARK(BM_L2SquaredScalar);

void BM_L2SquaredVector(benchmark::State& state) {
  auto a = RandomVec(64, 7);
  auto b = RandomVec(64, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::L2SquaredVector(a.data(), b.data(), 64));
  }
}
BENCHMARK(BM_L2SquaredVector);

void BM_Conv2dForward(benchmark::State& state) {
  nn::Conv2d conv(3, 8, 3, 1, 1);
  Rng rng(9);
  conv.InitRandom(&rng);
  Tensor input({3, 64, 64});
  for (int64_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<float>(rng.NextDouble());
  }
  nn::Device* device = nn::GetDevice(nn::DeviceKind::kCpuVector);
  for (auto _ : state) {
    auto out = conv.Forward(input, device);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Conv2dForward);

void BM_PairwiseL2Device(benchmark::State& state) {
  const auto kind = static_cast<nn::DeviceKind>(state.range(0));
  nn::Device* device = nn::GetDevice(kind);
  const size_t n = 256, dim = 48;
  auto a = RandomVec(n * dim, 10);
  auto b = RandomVec(n * dim, 11);
  std::vector<float> out(n * n);
  for (auto _ : state) {
    device->PairwiseL2Squared(a.data(), n, b.data(), n, dim, out.data());
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(nn::DeviceKindName(kind));
}
BENCHMARK(BM_PairwiseL2Device)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace deeplens

BENCHMARK_MAIN();
