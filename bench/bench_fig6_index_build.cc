// Figure 6: index construction time as a function of the number of tuples
// indexed, for every index DeepLens supports. The paper's headline: the
// R-Tree is ~20x slower to construct than a B+Tree, and multidimensional
// index construction scales poorly (§7.3).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/bytes.h"
#include "common/clock.h"
#include "common/rng.h"
#include "index/balltree.h"
#include "index/btree.h"
#include "index/hash_index.h"
#include "index/lsh.h"
#include "index/rtree.h"
#include "index/sorted_file_index.h"

namespace deeplens {
namespace bench {
namespace {

int Run() {
  PrintHeader("Figure 6: index construction time vs #tuples",
              "paper Fig. 6 (R-Tree ~20x B+Tree; poor multi-dim scaling)");

  std::vector<int> sizes = {1000, 5000, 10000, 50000};
  if (BenchScale() > 1) sizes.push_back(50000 * BenchScale());

  std::printf("%-10s %10s %10s %12s %10s %12s %10s\n", "tuples", "hash",
              "b+tree", "sorted-file", "r-tree", "ball-tree64", "lsh64");
  for (int n : sizes) {
    Rng rng(static_cast<uint64_t>(n));
    // Pre-generate data so only construction is timed.
    std::vector<std::string> keys;
    std::vector<Rect> rects;
    keys.reserve(static_cast<size_t>(n));
    rects.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      keys.push_back(EncodeKeyU64(rng.NextU64Below(1u << 24)));
      const float x = static_cast<float>(rng.NextUniform(0, 1000));
      const float y = static_cast<float>(rng.NextUniform(0, 1000));
      rects.push_back(Rect{x, y, x + 8, y + 8});
    }
    const size_t dim = 64;
    std::vector<float> points(static_cast<size_t>(n) * dim);
    for (auto& v : points) v = static_cast<float>(rng.NextGaussian());

    Stopwatch t_hash;
    {
      HashIndex index;
      for (int i = 0; i < n; ++i) {
        index.Insert(Slice(keys[static_cast<size_t>(i)]),
                     static_cast<RowId>(i));
      }
    }
    const double hash_ms = t_hash.ElapsedMillis();

    Stopwatch t_btree;
    {
      BPlusTree tree;
      for (int i = 0; i < n; ++i) {
        tree.Insert(Slice(keys[static_cast<size_t>(i)]),
                    static_cast<RowId>(i));
      }
    }
    const double btree_ms = t_btree.ElapsedMillis();

    Stopwatch t_sorted;
    {
      SortedFileIndex index;
      for (int i = 0; i < n; ++i) {
        index.Append(Slice(keys[static_cast<size_t>(i)]),
                     static_cast<RowId>(i));
      }
      index.Build();
    }
    const double sorted_ms = t_sorted.ElapsedMillis();

    Stopwatch t_rtree;
    {
      // Page-sized nodes (the paper's libspatialindex R-Tree stores 4 KB
      // disk pages, ~64 entries); the quadratic split is O(M^2).
      RTree tree(64);
      for (int i = 0; i < n; ++i) {
        tree.Insert(rects[static_cast<size_t>(i)], static_cast<RowId>(i));
      }
    }
    const double rtree_ms = t_rtree.ElapsedMillis();

    Stopwatch t_ball;
    {
      BallTree tree;
      DL_CHECK_OK(tree.Build(points, dim, {}));
    }
    const double ball_ms = t_ball.ElapsedMillis();

    Stopwatch t_lsh;
    {
      LshIndex lsh;
      DL_CHECK_OK(lsh.Build(points, dim, {}));
    }
    const double lsh_ms = t_lsh.ElapsedMillis();

    std::printf("%-10d %10.1f %10.1f %12.1f %10.1f %12.1f %10.1f\n", n,
                hash_ms, btree_ms, sorted_ms, rtree_ms, ball_ms, lsh_ms);
  }
  std::printf(
      "\nexpected shape: hash/sorted-file cheapest; the R-Tree is an order\n"
      "of magnitude above the B+Tree; the Ball-Tree grows super-linearly\n"
      "in high dimension. LSH (future-work §7.3) builds far cheaper than\n"
      "exact multi-dimensional structures.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace deeplens

int main() { return deeplens::bench::Run(); }
