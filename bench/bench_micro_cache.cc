// Microbenchmark: the inference & decode cache subsystem on repeated
// workloads — (1) a repeated NN-UDF query over a panel view (the paper's
// §7.4 "inference dominates query time" scenario), (1b) a scan-flush
// phase: a hot NN-UDF working set re-queried under interleaved one-shot
// cold scans, run once under TinyLFU admission and once under plain LRU,
// (2) repeated random frame reads over an encoded video (§3.1 decode
// cost), and (3) a process-restart phase: the same NN-UDF query against
// a *fresh* Database whose persistent inference cache
// (DEEPLENS_CACHE_DIR) was filled by a previous Database instance — the
// paper's materialized-UDF-view durability argument. Results are
// verified identical across cached/uncached engines (and across the
// restart) before timing is reported, all timings are written to
// BENCH_cache.json, and the run fails unless the warm (cache-hit) pass
// is at least 3x faster than the cold (cache-miss) pass for workloads
// 1/2/3 and TinyLFU's warm speedup under scan traffic is at least 2x the
// LRU figure in phase 1b.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cache/cache_config.h"
#include "cache/inference_cache.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/database.h"
#include "core/query.h"
#include "exec/nn_udf.h"
#include "sim/scene.h"
#include "storage/video_store.h"

namespace deeplens {
namespace bench {
namespace {

constexpr int kPanels = 240;
constexpr int kFrames = 160;
constexpr int kRandomReads = 80;
constexpr int kWarmReps = 3;
constexpr double kRequiredSpeedup = 3.0;
// Scan-resistance phase: hot working set, interleaved one-shot scans.
constexpr int kScanHot = 96;
constexpr int kScanColdPerRound = 192;
constexpr int kScanRounds = 4;
constexpr size_t kScanBudgetBytes = 24 << 10;  // holds the hot set, not a scan
// TinyLFU must keep the hot working set at least this much faster than
// LRU under identical interleaved scan traffic.
constexpr double kRequiredScanAdvantage = 2.0;

PatchCollection PanelView(int n, uint64_t seed = 0xcafe0001) {
  Rng rng(seed);
  PatchCollection patches;
  patches.reserve(n);
  for (int i = 0; i < n; ++i) {
    // Every panel gets unique background noise so fingerprints are
    // distinct — the cold pass must run one inference per patch (with
    // identical panels, intra-query sharing alone would serve them).
    Image panel(64, 64, 3);
    for (auto& b : panel.bytes()) {
      b = static_cast<uint8_t>(10 + rng.NextU64Below(20));
    }
    if (rng.NextU64Below(100) < 70) {
      // Multi-digit strings: OCR segments and classifies each glyph.
      const std::string digits =
          std::to_string(100 + rng.NextU64Below(900));
      sim::DrawDigits(&panel, nn::BBox{4, 20, 60, 44}, digits);
    }
    Patch p;
    p.set_id(static_cast<PatchId>(i + 1));
    p.set_ref(ImgRef{"panels", i, kInvalidPatchId});
    p.set_pixels(std::move(panel));
    p.set_bbox(nn::BBox{0, 0, 64, 64});
    p.mutable_meta().Set(meta_keys::kFrameNo, int64_t{i});
    patches.push_back(std::move(p));
  }
  return patches;
}

std::vector<Image> VideoFrames(int n) {
  std::vector<Image> frames;
  frames.reserve(n);
  for (int f = 0; f < n; ++f) {
    Image img(64, 48, 3);
    for (int y = 0; y < 48; ++y) {
      for (int x = 0; x < 64; ++x) {
        img.At(x, y, 0) = static_cast<uint8_t>((x * 3 + f * 2) & 0xff);
        img.At(x, y, 1) = static_cast<uint8_t>((y * 5 + f) & 0xff);
        img.At(x, y, 2) = 40;
      }
    }
    const int bx = (f * 3) % 60;
    for (int dy = 0; dy < 4; ++dy) {
      for (int dx = 0; dx < 4; ++dx) {
        img.At(bx + dx, 20 + dy, 0) = 255;
      }
    }
    frames.push_back(std::move(img));
  }
  return frames;
}

struct CaseTiming {
  const char* name;
  double ms = 0.0;
  uint64_t rows_out = 0;
};

struct ScanPhaseResult {
  double cold_ms = 0.0;       // hot pass with everything missing
  double hot_ms = 0.0;        // mean hot pass under interleaved scans
  double speedup = 0.0;       // cold_ms / hot_ms
  uint64_t rows = 0;
  uint64_t admission_denied = 0;
  uint64_t evictions = 0;
};

void WriteJson(const std::vector<CaseTiming>& cases, double infer_speedup,
               double decode_speedup, double restart_speedup,
               const ScanPhaseResult& scan_tinylfu,
               const ScanPhaseResult& scan_lru, double infer_hit_rate,
               double decode_hit_rate) {
  std::FILE* f = std::fopen("BENCH_cache.json", "w");
  if (f == nullptr) {
    std::printf("WARNING: could not open BENCH_cache.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_cache\",\n");
  std::fprintf(f, "  \"panels\": %d,\n  \"frames\": %d,\n", kPanels,
               kFrames);
  std::fprintf(f, "  \"workers\": %zu,\n",
               ThreadPool::Global().num_threads());
  std::fprintf(f, "  \"inference_warm_speedup\": %.2f,\n", infer_speedup);
  std::fprintf(f, "  \"decode_warm_speedup\": %.2f,\n", decode_speedup);
  std::fprintf(f, "  \"restart_warm_speedup\": %.2f,\n", restart_speedup);
  std::fprintf(f, "  \"scan_warm_speedup_tinylfu\": %.2f,\n",
               scan_tinylfu.speedup);
  std::fprintf(f, "  \"scan_warm_speedup_lru\": %.2f,\n", scan_lru.speedup);
  std::fprintf(f, "  \"scan_admission_advantage\": %.2f,\n",
               scan_lru.speedup > 0.0 ? scan_tinylfu.speedup / scan_lru.speedup
                                      : 0.0);
  std::fprintf(f, "  \"scan_admission_denied\": %" PRIu64 ",\n",
               scan_tinylfu.admission_denied);
  std::fprintf(f, "  \"inference_hit_rate\": %.3f,\n", infer_hit_rate);
  std::fprintf(f, "  \"decode_hit_rate\": %.3f,\n", decode_hit_rate);
  std::fprintf(f, "  \"cases\": [\n");
  for (size_t i = 0; i < cases.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ms\": %.3f, \"rows_out\": "
                 "%" PRIu64 "}%s\n",
                 cases[i].name, cases[i].ms, cases[i].rows_out,
                 i + 1 == cases.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_cache.json (%zu cases)\n", cases.size());
}

int Run() {
  PrintHeader("micro: inference & decode caches (cold vs warm)",
              "the §3.1/§7.4 reuse argument; no paper figure");

  ScratchDir scratch("dl_bench_cache");
  auto db_or = Database::Open(scratch.path() + "/db");
  DL_CHECK_OK(db_or.status());
  Database* db = db_or->get();
  CacheConfig config;
  config.budget_bytes = 256 << 20;  // ample: this bench measures hits
  db->ConfigureCaches(config);

  // --- 1. Repeated NN-UDF query --------------------------------------
  DL_CHECK_OK(db->RegisterView("panels", PanelView(kPanels)));

  // Depth first (the conv feature extractor is the compute-bound model),
  // then OCR on the rows that pass — both memoized when a cache is given.
  // Count() keeps the aggregate path (no survivor materialization), so
  // the timing isolates inference vs cache lookups.
  auto run_query = [&](InferenceCache* cache) -> std::pair<double, uint64_t> {
    Query query(db, "panels");
    query.Where(Gt(DepthUdf(0, db->depth_model(), 240, cache), Lit(1.0)));
    query.Where(Ne(OcrTextUdf(0, db->ocr(), cache), Lit("")));
    Stopwatch timer;
    auto count = query.Count();
    DL_CHECK_OK(count.status());
    return {timer.ElapsedMillis(), *count};
  };

  const auto [uncached_ms, uncached_rows] = run_query(nullptr);
  const auto [cold_ms, cold_rows] = run_query(db->inference_cache());
  double warm_ms = 1e300;
  uint64_t warm_rows = 0;
  for (int rep = 0; rep < kWarmReps; ++rep) {
    const auto [ms, rows] = run_query(db->inference_cache());
    warm_ms = ms < warm_ms ? ms : warm_ms;
    warm_rows = rows;
  }
  if (uncached_rows != cold_rows || cold_rows != warm_rows) {
    std::printf("CACHE MISMATCH: uncached=%" PRIu64 " cold=%" PRIu64
                " warm=%" PRIu64 "\n",
                uncached_rows, cold_rows, warm_rows);
    return 1;
  }
  const CacheStats infer_stats = db->inference_cache()->Stats();
  const double infer_speedup = cold_ms / warm_ms;

  std::printf("repeated depth+OCR UDF query over %d panels (matches: %" PRIu64
              "):\n",
              kPanels, cold_rows);
  std::printf("%-24s %10.2f ms\n", "uncached", uncached_ms);
  std::printf("%-24s %10.2f ms\n", "cold (miss+fill)", cold_ms);
  std::printf("%-24s %10.2f ms %8.1fx\n", "warm (hits)", warm_ms,
              infer_speedup);
  std::printf("inference cache: %.1f%% hit rate, %" PRIu64
              " entries, %" PRIu64 " KB\n",
              100.0 * infer_stats.HitRate(), infer_stats.entries,
              infer_stats.bytes >> 10);

  // --- 1b. Scan resistance: TinyLFU vs LRU admission -------------------
  // A hot working set queried every round, interleaved with one-shot
  // cold-scan views that collectively dwarf the cache budget. Under LRU
  // every scan flushes the hot set, so each hot pass re-runs inference;
  // under TinyLFU the scan keys lose the frequency comparison against
  // the resident victims and the hot passes stay lookup-bound.
  DL_CHECK_OK(
      db->RegisterView("scan_hot", PanelView(kScanHot, 0x50cafe01)));
  auto depth_all = [&](const char* view,
                       InferenceCache* cache) -> std::pair<double, uint64_t> {
    Query query(db, view);
    // Always-true threshold: the depth model must run for every row, so
    // the timing is inference (or cache lookup) bound.
    query.Where(Gt(DepthUdf(0, db->depth_model(), 240, cache), Lit(-1e9)));
    Stopwatch timer;
    auto count = query.Count();
    DL_CHECK_OK(count.status());
    return {timer.ElapsedMillis(), *count};
  };

  auto run_scan_phase = [&](CacheAdmission admission,
                            uint64_t seed_base) -> ScanPhaseResult {
    InferenceCache cache(kScanBudgetBytes, /*num_shards=*/1, admission);
    ScanPhaseResult result;
    // Cold fill: one inference per hot patch — also the cost model for a
    // flushed hot pass.
    const auto [cold_ms, cold_rows] = depth_all("scan_hot", &cache);
    result.cold_ms = cold_ms;
    result.rows = cold_rows;
    // One warm-up pass so hot frequencies accrue before scans begin.
    (void)depth_all("scan_hot", &cache);
    double hot_ms_total = 0.0;
    for (int round = 0; round < kScanRounds; ++round) {
      DL_CHECK_OK(db->RegisterView(
          "scan_cold",
          PanelView(kScanColdPerRound,
                    seed_base + static_cast<uint64_t>(round))));
      (void)depth_all("scan_cold", &cache);  // the flush attempt
      const auto [ms, rows] = depth_all("scan_hot", &cache);
      if (rows != result.rows) {
        std::printf("SCAN MISMATCH: cold=%" PRIu64 " hot=%" PRIu64 "\n",
                    result.rows, rows);
        std::exit(1);
      }
      hot_ms_total += ms;
    }
    result.hot_ms = hot_ms_total / kScanRounds;
    result.speedup = result.cold_ms / result.hot_ms;
    const CacheStats stats = cache.Stats();
    result.admission_denied = stats.admission_denied;
    result.evictions = stats.evictions;
    return result;
  };

  const ScanPhaseResult scan_tinylfu =
      run_scan_phase(CacheAdmission::kTinyLfu, 0xc01d1000);
  const ScanPhaseResult scan_lru =
      run_scan_phase(CacheAdmission::kLru, 0xc01d2000);
  const double scan_advantage =
      scan_lru.speedup > 0.0 ? scan_tinylfu.speedup / scan_lru.speedup : 0.0;

  std::printf("\nhot working set (%d patches) under interleaved cold scans "
              "(%d x %d one-shot patches, %zu KB budget):\n",
              kScanHot, kScanRounds, kScanColdPerRound,
              kScanBudgetBytes >> 10);
  std::printf("%-24s %10.2f ms %8.1fx  (%" PRIu64 " denied, %" PRIu64
              " evictions)\n",
              "tinylfu hot pass", scan_tinylfu.hot_ms, scan_tinylfu.speedup,
              scan_tinylfu.admission_denied, scan_tinylfu.evictions);
  std::printf("%-24s %10.2f ms %8.1fx  (%" PRIu64 " denied, %" PRIu64
              " evictions)\n",
              "lru hot pass", scan_lru.hot_ms, scan_lru.speedup,
              scan_lru.admission_denied, scan_lru.evictions);
  std::printf("%-24s %10.1fx\n", "admission advantage", scan_advantage);

  // --- 2. Repeated random reads over an encoded video -----------------
  const std::string video_path = scratch.path() + "/video";
  {
    VideoStoreOptions options;
    options.format = VideoFormat::kEncoded;
    options.gop_size = 20;
    auto writer = CreateVideoWriter(video_path, options);
    DL_CHECK_OK(writer.status());
    for (const Image& f : VideoFrames(kFrames)) {
      DL_CHECK_OK((*writer)->AddFrame(f));
    }
    DL_CHECK_OK((*writer)->Finish());
  }
  std::vector<int> read_order;
  {
    Rng rng(0xdec0ded);
    for (int i = 0; i < kRandomReads; ++i) {
      read_order.push_back(static_cast<int>(rng.NextU64Below(kFrames)));
    }
  }
  auto run_reads = [&](VideoReader* reader) -> std::pair<double, uint64_t> {
    Stopwatch timer;
    uint64_t bytes = 0;
    for (int f : read_order) {
      auto img = reader->ReadFrame(f);
      DL_CHECK_OK(img.status());
      bytes += img->size_bytes();
    }
    return {timer.ElapsedMillis(), bytes};
  };

  auto uncached_reader = OpenVideo(video_path);
  DL_CHECK_OK(uncached_reader.status());
  const auto [dec_uncached_ms, dec_uncached_bytes] =
      run_reads(uncached_reader->get());

  auto cached_reader = OpenVideo(video_path, db->segment_cache());
  DL_CHECK_OK(cached_reader.status());
  const auto [dec_cold_ms, dec_cold_bytes] = run_reads(cached_reader->get());
  double dec_warm_ms = 1e300;
  uint64_t dec_warm_bytes = 0;
  for (int rep = 0; rep < kWarmReps; ++rep) {
    const auto [ms, bytes] = run_reads(cached_reader->get());
    dec_warm_ms = ms < dec_warm_ms ? ms : dec_warm_ms;
    dec_warm_bytes = bytes;
  }
  if (dec_uncached_bytes != dec_cold_bytes ||
      dec_cold_bytes != dec_warm_bytes) {
    std::printf("DECODE MISMATCH: uncached=%" PRIu64 " cold=%" PRIu64
                " warm=%" PRIu64 "\n",
                dec_uncached_bytes, dec_cold_bytes, dec_warm_bytes);
    return 1;
  }
  const CacheStats seg_stats = db->segment_cache()->Stats();
  const double decode_speedup = dec_cold_ms / dec_warm_ms;

  // --- 3. Restart: persistent inference cache across Database opens ----
  // A fresh Database pointed at the same DEEPLENS_CACHE_DIR must serve
  // the whole query from the spilled/warm-loaded materialized UDF views
  // instead of re-running inference. The query stacks several UDF
  // conjuncts (five depth variants + OCR): a restarted process must
  // re-hash each patch once either way, so the win to measure is the
  // inference it *doesn't* re-run.
  const std::string cache_dir = scratch.path() + "/pcache";
  CacheConfig persistent_config;
  persistent_config.budget_bytes = 256 << 20;
  persistent_config.cache_dir = cache_dir;

  auto restart_query = [](Database* db) -> std::pair<double, uint64_t> {
    Query query(db, "panels");
    InferenceCache* cache = db->inference_cache();
    query.Where(Gt(DepthUdf(0, db->depth_model(), 240, cache), Lit(1.0)));
    query.Where(Gt(DepthUdf(0, db->depth_model(), 480, cache), Lit(1.0)));
    query.Where(Gt(DepthUdf(0, db->depth_model(), 720, cache), Lit(1.0)));
    query.Where(Gt(DepthUdf(0, db->depth_model(), 960, cache), Lit(1.0)));
    query.Where(Gt(DepthUdf(0, db->depth_model(), 1200, cache), Lit(1.0)));
    query.Where(Ne(OcrTextUdf(0, db->ocr(), cache), Lit("")));
    Stopwatch timer;
    auto count = query.Count();
    DL_CHECK_OK(count.status());
    return {timer.ElapsedMillis(), *count};
  };

  // Cache-off baseline for the differential (budget 0 disables caching).
  uint64_t restart_plain_rows = 0;
  {
    auto db_p = Database::Open(scratch.path() + "/db_restart_plain");
    DL_CHECK_OK(db_p.status());
    CacheConfig off;
    off.budget_bytes = 0;
    (*db_p)->ConfigureCaches(off);
    DL_CHECK_OK((*db_p)->RegisterView("panels", PanelView(kPanels)));
    restart_plain_rows = restart_query(db_p->get()).second;
  }

  double restart_cold_ms = 0.0;
  uint64_t restart_cold_rows = 0;
  {
    auto db_a = Database::Open(scratch.path() + "/db_restart_a");
    DL_CHECK_OK(db_a.status());
    (*db_a)->ConfigureCaches(persistent_config);
    DL_CHECK_OK((*db_a)->RegisterView("panels", PanelView(kPanels)));
    const auto [ms, rows] = restart_query(db_a->get());
    restart_cold_ms = ms;
    restart_cold_rows = rows;
    // Database teardown spills the resident working set to the log.
  }

  // Best of kWarmReps *independent* restarts: every rep opens a fresh
  // Database and registers a fresh view, so nothing in-process (patch
  // fingerprint memoization, warm allocator) carries over — each rep is
  // an honest restart, the min just removes scheduler noise.
  double restart_open_ms = 0.0;
  double restart_warm_ms = 1e300;
  uint64_t restart_warm_rows = 0;
  CacheStats restart_stats;
  for (int rep = 0; rep < kWarmReps; ++rep) {
    Stopwatch open_timer;
    auto db_b = Database::Open(scratch.path() + "/db_restart_b");
    DL_CHECK_OK(db_b.status());
    (*db_b)->ConfigureCaches(persistent_config);  // warm-loads the log
    const double open_ms = open_timer.ElapsedMillis();
    DL_CHECK_OK((*db_b)->RegisterView("panels", PanelView(kPanels)));
    const auto [ms, rows] = restart_query(db_b->get());
    restart_warm_rows = rows;
    if (ms < restart_warm_ms) {
      restart_warm_ms = ms;
      restart_open_ms = open_ms;
      restart_stats = (*db_b)->inference_cache()->Stats();
    }
  }
  if (restart_cold_rows != restart_plain_rows ||
      restart_warm_rows != restart_plain_rows) {
    std::printf("RESTART MISMATCH: uncached=%" PRIu64 " cold=%" PRIu64
                " warm-restart=%" PRIu64 "\n",
                restart_plain_rows, restart_cold_rows, restart_warm_rows);
    return 1;
  }
  const double restart_speedup = restart_cold_ms / restart_warm_ms;

  std::printf("\nsame query, fresh Database over a persistent cache dir:\n");
  std::printf("%-24s %10.2f ms\n", "cold (fill + spill)", restart_cold_ms);
  std::printf("%-24s %10.2f ms\n", "reopen (warm-load)", restart_open_ms);
  std::printf("%-24s %10.2f ms %8.1fx\n", "warm restart", restart_warm_ms,
              restart_speedup);
  std::printf("provenance: %" PRIu64 " memory hits, %" PRIu64
              " disk hits, %" PRIu64 " warm-loaded, %" PRIu64
              " spilled, log %" PRIu64 " KB\n",
              restart_stats.hits, restart_stats.disk_hits,
              restart_stats.warm_loaded, restart_stats.spilled,
              restart_stats.disk_bytes >> 10);

  std::printf("\n%d random ReadFrame()s over a %d-frame encoded video "
              "(gop 20):\n",
              kRandomReads, kFrames);
  std::printf("%-24s %10.2f ms\n", "uncached", dec_uncached_ms);
  std::printf("%-24s %10.2f ms\n", "cold (miss+fill)", dec_cold_ms);
  std::printf("%-24s %10.2f ms %8.1fx\n", "warm (hits)", dec_warm_ms,
              decode_speedup);
  std::printf("segment cache: %.1f%% hit rate, %" PRIu64 " segments, %" PRIu64
              " KB\n",
              100.0 * seg_stats.HitRate(), seg_stats.entries,
              seg_stats.bytes >> 10);

  WriteJson({{"ocr_udf_query_uncached", uncached_ms, uncached_rows},
             {"ocr_udf_query_cold", cold_ms, cold_rows},
             {"ocr_udf_query_warm", warm_ms, warm_rows},
             {"scan_hot_pass_tinylfu", scan_tinylfu.hot_ms,
              scan_tinylfu.rows},
             {"scan_hot_pass_lru", scan_lru.hot_ms, scan_lru.rows},
             {"encoded_reads_uncached", dec_uncached_ms, dec_uncached_bytes},
             {"encoded_reads_cold", dec_cold_ms, dec_cold_bytes},
             {"encoded_reads_warm", dec_warm_ms, dec_warm_bytes},
             {"restart_query_cold", restart_cold_ms, restart_cold_rows},
             {"restart_reopen_warmload", restart_open_ms, 0},
             {"restart_query_warm", restart_warm_ms, restart_warm_rows}},
            infer_speedup, decode_speedup, restart_speedup, scan_tinylfu,
            scan_lru, infer_stats.HitRate(), seg_stats.HitRate());

  if (infer_speedup < kRequiredSpeedup || decode_speedup < kRequiredSpeedup ||
      restart_speedup < kRequiredSpeedup) {
    std::printf("\nFAIL: warm speedup below %.1fx target (inference %.2fx, "
                "decode %.2fx, restart %.2fx)\n",
                kRequiredSpeedup, infer_speedup, decode_speedup,
                restart_speedup);
    return 1;
  }
  if (scan_advantage < kRequiredScanAdvantage) {
    std::printf("\nFAIL: TinyLFU admission advantage %.2fx under scan "
                "traffic is below the %.1fx target (tinylfu %.2fx vs lru "
                "%.2fx)\n",
                scan_advantage, kRequiredScanAdvantage, scan_tinylfu.speedup,
                scan_lru.speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace deeplens

int main() { return deeplens::bench::Run(); }
