# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-review
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(codec_test "/root/repo/build-review/codec_test")
set_tests_properties(codec_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;51;add_test;/root/repo/CMakeLists.txt;0;")
add_test(common_test "/root/repo/build-review/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;51;add_test;/root/repo/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build-review/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;51;add_test;/root/repo/CMakeLists.txt;0;")
add_test(etl_test "/root/repo/build-review/etl_test")
set_tests_properties(etl_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;51;add_test;/root/repo/CMakeLists.txt;0;")
add_test(exec_batch_test "/root/repo/build-review/exec_batch_test")
set_tests_properties(exec_batch_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;51;add_test;/root/repo/CMakeLists.txt;0;")
add_test(exec_test "/root/repo/build-review/exec_test")
set_tests_properties(exec_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;51;add_test;/root/repo/CMakeLists.txt;0;")
add_test(index_test "/root/repo/build-review/index_test")
set_tests_properties(index_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;51;add_test;/root/repo/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build-review/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;51;add_test;/root/repo/CMakeLists.txt;0;")
add_test(lineage_test "/root/repo/build-review/lineage_test")
set_tests_properties(lineage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;51;add_test;/root/repo/CMakeLists.txt;0;")
add_test(nn_test "/root/repo/build-review/nn_test")
set_tests_properties(nn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;51;add_test;/root/repo/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build-review/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;51;add_test;/root/repo/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build-review/storage_test")
set_tests_properties(storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;51;add_test;/root/repo/CMakeLists.txt;0;")
add_test(tensor_test "/root/repo/build-review/tensor_test")
set_tests_properties(tensor_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;51;add_test;/root/repo/CMakeLists.txt;0;")
subdirs("googletest-build")
