file(REMOVE_RECURSE
  "CMakeFiles/example_cross_camera.dir/examples/cross_camera.cc.o"
  "CMakeFiles/example_cross_camera.dir/examples/cross_camera.cc.o.d"
  "example_cross_camera"
  "example_cross_camera.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cross_camera.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
