# Empty compiler generated dependencies file for example_cross_camera.
# This may be replaced when dependencies are built.
