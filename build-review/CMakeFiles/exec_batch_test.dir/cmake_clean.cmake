file(REMOVE_RECURSE
  "CMakeFiles/exec_batch_test.dir/tests/exec_batch_test.cc.o"
  "CMakeFiles/exec_batch_test.dir/tests/exec_batch_test.cc.o.d"
  "exec_batch_test"
  "exec_batch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
