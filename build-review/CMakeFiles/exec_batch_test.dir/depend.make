# Empty dependencies file for exec_batch_test.
# This may be replaced when dependencies are built.
