file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_balltree.dir/bench/bench_fig7_balltree.cc.o"
  "CMakeFiles/bench_fig7_balltree.dir/bench/bench_fig7_balltree.cc.o.d"
  "bench_fig7_balltree"
  "bench_fig7_balltree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_balltree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
