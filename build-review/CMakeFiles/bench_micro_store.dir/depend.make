# Empty dependencies file for bench_micro_store.
# This may be replaced when dependencies are built.
