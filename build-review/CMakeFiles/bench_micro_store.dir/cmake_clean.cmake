file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_store.dir/bench/bench_micro_store.cc.o"
  "CMakeFiles/bench_micro_store.dir/bench/bench_micro_store.cc.o.d"
  "bench_micro_store"
  "bench_micro_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
