file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_indexes.dir/bench/bench_fig4_indexes.cc.o"
  "CMakeFiles/bench_fig4_indexes.dir/bench/bench_fig4_indexes.cc.o.d"
  "bench_fig4_indexes"
  "bench_fig4_indexes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_indexes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
