# Empty dependencies file for bench_fig4_indexes.
# This may be replaced when dependencies are built.
