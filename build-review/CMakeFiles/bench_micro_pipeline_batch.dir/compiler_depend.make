# Empty compiler generated dependencies file for bench_micro_pipeline_batch.
# This may be replaced when dependencies are built.
