file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_pipeline_batch.dir/bench/bench_micro_pipeline_batch.cc.o"
  "CMakeFiles/bench_micro_pipeline_batch.dir/bench/bench_micro_pipeline_batch.cc.o.d"
  "bench_micro_pipeline_batch"
  "bench_micro_pipeline_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_pipeline_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
