file(REMOVE_RECURSE
  "CMakeFiles/example_parking_lot.dir/examples/parking_lot.cc.o"
  "CMakeFiles/example_parking_lot.dir/examples/parking_lot.cc.o.d"
  "example_parking_lot"
  "example_parking_lot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_parking_lot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
