# Empty compiler generated dependencies file for deeplens.
# This may be replaced when dependencies are built.
