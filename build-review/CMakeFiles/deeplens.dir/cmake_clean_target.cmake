file(REMOVE_RECURSE
  "libdeeplens.a"
)
