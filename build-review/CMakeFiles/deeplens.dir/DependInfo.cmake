
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/dct.cc" "CMakeFiles/deeplens.dir/src/codec/dct.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/codec/dct.cc.o.d"
  "/root/repo/src/codec/entropy.cc" "CMakeFiles/deeplens.dir/src/codec/entropy.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/codec/entropy.cc.o.d"
  "/root/repo/src/codec/image_codec.cc" "CMakeFiles/deeplens.dir/src/codec/image_codec.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/codec/image_codec.cc.o.d"
  "/root/repo/src/codec/quant.cc" "CMakeFiles/deeplens.dir/src/codec/quant.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/codec/quant.cc.o.d"
  "/root/repo/src/codec/video_codec.cc" "CMakeFiles/deeplens.dir/src/codec/video_codec.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/codec/video_codec.cc.o.d"
  "/root/repo/src/common/bytes.cc" "CMakeFiles/deeplens.dir/src/common/bytes.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/common/bytes.cc.o.d"
  "/root/repo/src/common/checksum.cc" "CMakeFiles/deeplens.dir/src/common/checksum.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/common/checksum.cc.o.d"
  "/root/repo/src/common/logging.cc" "CMakeFiles/deeplens.dir/src/common/logging.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "CMakeFiles/deeplens.dir/src/common/status.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "CMakeFiles/deeplens.dir/src/common/string_util.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/common/string_util.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "CMakeFiles/deeplens.dir/src/common/thread_pool.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/common/thread_pool.cc.o.d"
  "/root/repo/src/core/benchmark_queries.cc" "CMakeFiles/deeplens.dir/src/core/benchmark_queries.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/core/benchmark_queries.cc.o.d"
  "/root/repo/src/core/database.cc" "CMakeFiles/deeplens.dir/src/core/database.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/core/database.cc.o.d"
  "/root/repo/src/core/patch.cc" "CMakeFiles/deeplens.dir/src/core/patch.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/core/patch.cc.o.d"
  "/root/repo/src/core/planner.cc" "CMakeFiles/deeplens.dir/src/core/planner.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/core/planner.cc.o.d"
  "/root/repo/src/core/query.cc" "CMakeFiles/deeplens.dir/src/core/query.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/core/query.cc.o.d"
  "/root/repo/src/core/types.cc" "CMakeFiles/deeplens.dir/src/core/types.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/core/types.cc.o.d"
  "/root/repo/src/core/value.cc" "CMakeFiles/deeplens.dir/src/core/value.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/core/value.cc.o.d"
  "/root/repo/src/etl/generators.cc" "CMakeFiles/deeplens.dir/src/etl/generators.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/etl/generators.cc.o.d"
  "/root/repo/src/etl/materialize.cc" "CMakeFiles/deeplens.dir/src/etl/materialize.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/etl/materialize.cc.o.d"
  "/root/repo/src/etl/transformers.cc" "CMakeFiles/deeplens.dir/src/etl/transformers.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/etl/transformers.cc.o.d"
  "/root/repo/src/exec/aggregates.cc" "CMakeFiles/deeplens.dir/src/exec/aggregates.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/exec/aggregates.cc.o.d"
  "/root/repo/src/exec/batch.cc" "CMakeFiles/deeplens.dir/src/exec/batch.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/exec/batch.cc.o.d"
  "/root/repo/src/exec/expression.cc" "CMakeFiles/deeplens.dir/src/exec/expression.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/exec/expression.cc.o.d"
  "/root/repo/src/exec/expression_patterns.cc" "CMakeFiles/deeplens.dir/src/exec/expression_patterns.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/exec/expression_patterns.cc.o.d"
  "/root/repo/src/exec/joins.cc" "CMakeFiles/deeplens.dir/src/exec/joins.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/exec/joins.cc.o.d"
  "/root/repo/src/exec/operators.cc" "CMakeFiles/deeplens.dir/src/exec/operators.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/exec/operators.cc.o.d"
  "/root/repo/src/exec/pipeline.cc" "CMakeFiles/deeplens.dir/src/exec/pipeline.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/exec/pipeline.cc.o.d"
  "/root/repo/src/index/balltree.cc" "CMakeFiles/deeplens.dir/src/index/balltree.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/index/balltree.cc.o.d"
  "/root/repo/src/index/btree.cc" "CMakeFiles/deeplens.dir/src/index/btree.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/index/btree.cc.o.d"
  "/root/repo/src/index/hash_index.cc" "CMakeFiles/deeplens.dir/src/index/hash_index.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/index/hash_index.cc.o.d"
  "/root/repo/src/index/index.cc" "CMakeFiles/deeplens.dir/src/index/index.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/index/index.cc.o.d"
  "/root/repo/src/index/lsh.cc" "CMakeFiles/deeplens.dir/src/index/lsh.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/index/lsh.cc.o.d"
  "/root/repo/src/index/rtree.cc" "CMakeFiles/deeplens.dir/src/index/rtree.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/index/rtree.cc.o.d"
  "/root/repo/src/index/sorted_file_index.cc" "CMakeFiles/deeplens.dir/src/index/sorted_file_index.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/index/sorted_file_index.cc.o.d"
  "/root/repo/src/lineage/lineage.cc" "CMakeFiles/deeplens.dir/src/lineage/lineage.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/lineage/lineage.cc.o.d"
  "/root/repo/src/nn/device.cc" "CMakeFiles/deeplens.dir/src/nn/device.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/nn/device.cc.o.d"
  "/root/repo/src/nn/layers.cc" "CMakeFiles/deeplens.dir/src/nn/layers.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/nn/layers.cc.o.d"
  "/root/repo/src/nn/models.cc" "CMakeFiles/deeplens.dir/src/nn/models.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/nn/models.cc.o.d"
  "/root/repo/src/nn/network.cc" "CMakeFiles/deeplens.dir/src/nn/network.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/nn/network.cc.o.d"
  "/root/repo/src/sim/accuracy.cc" "CMakeFiles/deeplens.dir/src/sim/accuracy.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/sim/accuracy.cc.o.d"
  "/root/repo/src/sim/datasets.cc" "CMakeFiles/deeplens.dir/src/sim/datasets.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/sim/datasets.cc.o.d"
  "/root/repo/src/sim/scene.cc" "CMakeFiles/deeplens.dir/src/sim/scene.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/sim/scene.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "CMakeFiles/deeplens.dir/src/storage/catalog.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/storage/catalog.cc.o.d"
  "/root/repo/src/storage/encoded_file.cc" "CMakeFiles/deeplens.dir/src/storage/encoded_file.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/storage/encoded_file.cc.o.d"
  "/root/repo/src/storage/file_io.cc" "CMakeFiles/deeplens.dir/src/storage/file_io.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/storage/file_io.cc.o.d"
  "/root/repo/src/storage/frame_file.cc" "CMakeFiles/deeplens.dir/src/storage/frame_file.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/storage/frame_file.cc.o.d"
  "/root/repo/src/storage/record_store.cc" "CMakeFiles/deeplens.dir/src/storage/record_store.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/storage/record_store.cc.o.d"
  "/root/repo/src/storage/segmented_file.cc" "CMakeFiles/deeplens.dir/src/storage/segmented_file.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/storage/segmented_file.cc.o.d"
  "/root/repo/src/storage/sorted_file.cc" "CMakeFiles/deeplens.dir/src/storage/sorted_file.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/storage/sorted_file.cc.o.d"
  "/root/repo/src/storage/storage_advisor.cc" "CMakeFiles/deeplens.dir/src/storage/storage_advisor.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/storage/storage_advisor.cc.o.d"
  "/root/repo/src/storage/video_store.cc" "CMakeFiles/deeplens.dir/src/storage/video_store.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/storage/video_store.cc.o.d"
  "/root/repo/src/tensor/ops.cc" "CMakeFiles/deeplens.dir/src/tensor/ops.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/tensor/ops.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "CMakeFiles/deeplens.dir/src/tensor/tensor.cc.o" "gcc" "CMakeFiles/deeplens.dir/src/tensor/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
