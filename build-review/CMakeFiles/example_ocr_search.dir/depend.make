# Empty dependencies file for example_ocr_search.
# This may be replaced when dependencies are built.
