file(REMOVE_RECURSE
  "CMakeFiles/example_ocr_search.dir/examples/ocr_search.cc.o"
  "CMakeFiles/example_ocr_search.dir/examples/ocr_search.cc.o.d"
  "example_ocr_search"
  "example_ocr_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ocr_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
