file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_devices.dir/bench/bench_fig8_devices.cc.o"
  "CMakeFiles/bench_fig8_devices.dir/bench/bench_fig8_devices.cc.o.d"
  "bench_fig8_devices"
  "bench_fig8_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
