# Empty dependencies file for bench_tab1_plans.
# This may be replaced when dependencies are built.
