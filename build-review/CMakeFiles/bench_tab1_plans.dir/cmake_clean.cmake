file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_plans.dir/bench/bench_tab1_plans.cc.o"
  "CMakeFiles/bench_tab1_plans.dir/bench/bench_tab1_plans.cc.o.d"
  "bench_tab1_plans"
  "bench_tab1_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
