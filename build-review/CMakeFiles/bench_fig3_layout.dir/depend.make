# Empty dependencies file for bench_fig3_layout.
# This may be replaced when dependencies are built.
