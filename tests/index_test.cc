// Unit + property tests for index/: every structure is validated against a
// brute-force reference on randomized workloads (parameterized sizes).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/bytes.h"
#include "common/rng.h"
#include "index/balltree.h"
#include "index/btree.h"
#include "index/hash_index.h"
#include "index/lsh.h"
#include "index/rtree.h"
#include "index/sorted_file_index.h"
#include "tensor/ops.h"

namespace deeplens {
namespace {

TEST(HashIndexTest, InsertLookup) {
  HashIndex index;
  index.Insert(Slice("a"), 1);
  index.Insert(Slice("b"), 2);
  index.Insert(Slice("a"), 3);
  std::vector<RowId> rows;
  index.Lookup(Slice("a"), &rows);
  std::sort(rows.begin(), rows.end());
  EXPECT_EQ(rows, (std::vector<RowId>{1, 3}));
  EXPECT_TRUE(index.Contains(Slice("b")));
  EXPECT_FALSE(index.Contains(Slice("c")));
}

TEST(HashIndexTest, EraseRemovesAllDuplicates) {
  HashIndex index;
  index.Insert(Slice("k"), 1);
  index.Insert(Slice("k"), 2);
  index.Insert(Slice("other"), 3);
  EXPECT_EQ(index.Erase(Slice("k")), 2u);
  EXPECT_FALSE(index.Contains(Slice("k")));
  EXPECT_TRUE(index.Contains(Slice("other")));
  EXPECT_EQ(index.size(), 1u);
}

TEST(HashIndexTest, ErasedKeysStayDeadAfterGrowth) {
  HashIndex index;
  index.Insert(Slice("dead"), 1);
  index.Erase(Slice("dead"));
  // Force several growth/rehash cycles.
  for (int i = 0; i < 500; ++i) {
    index.Insert(Slice("live" + std::to_string(i)),
                 static_cast<RowId>(i));
  }
  EXPECT_FALSE(index.Contains(Slice("dead")));
}

class HashIndexProperty : public ::testing::TestWithParam<int> {};

TEST_P(HashIndexProperty, MatchesReferenceMultimap) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  HashIndex index;
  std::multimap<std::string, RowId> reference;
  for (int i = 0; i < GetParam(); ++i) {
    std::string key = "k" + std::to_string(rng.NextU64Below(50));
    index.Insert(Slice(key), static_cast<RowId>(i));
    reference.emplace(key, static_cast<RowId>(i));
  }
  for (int k = 0; k < 50; ++k) {
    std::string key = "k" + std::to_string(k);
    std::vector<RowId> got;
    index.Lookup(Slice(key), &got);
    std::sort(got.begin(), got.end());
    std::vector<RowId> want;
    auto [lo, hi] = reference.equal_range(key);
    for (auto it = lo; it != hi; ++it) want.push_back(it->second);
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, HashIndexProperty,
                         ::testing::Values(10, 100, 1000, 5000));

TEST(BPlusTreeTest, OrderedRangeScan) {
  BPlusTree tree(4);  // tiny fanout exercises splits
  for (int i = 99; i >= 0; --i) {
    tree.Insert(Slice(EncodeKeyU64(static_cast<uint64_t>(i))),
                static_cast<RowId>(i));
  }
  std::vector<RowId> rows;
  tree.RangeScan(Slice(EncodeKeyU64(10)), Slice(EncodeKeyU64(20)), &rows);
  ASSERT_EQ(rows.size(), 11u);
  for (int i = 0; i <= 10; ++i) EXPECT_EQ(rows[i], static_cast<RowId>(10 + i));
}

TEST(BPlusTreeTest, DuplicateKeys) {
  BPlusTree tree(4);
  for (int i = 0; i < 30; ++i) tree.Insert(Slice("same"), static_cast<RowId>(i));
  std::vector<RowId> rows;
  tree.Lookup(Slice("same"), &rows);
  EXPECT_EQ(rows.size(), 30u);
}

TEST(BPlusTreeTest, ForEachVisitsInKeyOrder) {
  BPlusTree tree(4);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    tree.Insert(Slice(EncodeKeyU64(rng.NextU64Below(1000))),
                static_cast<RowId>(i));
  }
  std::string prev;
  uint64_t count = 0;
  tree.ForEach([&](const Slice& key, RowId) {
    EXPECT_GE(key.ToString(), prev);
    prev = key.ToString();
    ++count;
    return true;
  });
  EXPECT_EQ(count, 200u);
}

TEST(BPlusTreeTest, EarlyTerminationFromVisitor) {
  BPlusTree tree;
  for (int i = 0; i < 10; ++i) {
    tree.Insert(Slice(EncodeKeyU64(static_cast<uint64_t>(i))),
                static_cast<RowId>(i));
  }
  uint64_t count = 0;
  tree.ForEach([&](const Slice&, RowId) { return ++count < 3; });
  EXPECT_EQ(count, 3u);
}

TEST(BPlusTreeTest, HeightGrowsLogarithmically) {
  BPlusTree tree(8);
  for (int i = 0; i < 10000; ++i) {
    tree.Insert(Slice(EncodeKeyU64(static_cast<uint64_t>(i))),
                static_cast<RowId>(i));
  }
  EXPECT_GE(tree.height(), 3u);
  EXPECT_LE(tree.height(), 8u);
  EXPECT_EQ(tree.Stats().num_entries, 10000u);
}

class BPlusTreeProperty : public ::testing::TestWithParam<int> {};

TEST_P(BPlusTreeProperty, RangeScansMatchReference) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 77);
  BPlusTree tree(8);
  std::multimap<std::string, RowId> reference;
  for (int i = 0; i < GetParam(); ++i) {
    std::string key = EncodeKeyU64(rng.NextU64Below(500));
    tree.Insert(Slice(key), static_cast<RowId>(i));
    reference.emplace(key, static_cast<RowId>(i));
  }
  for (int trial = 0; trial < 25; ++trial) {
    uint64_t a = rng.NextU64Below(500);
    uint64_t b = rng.NextU64Below(500);
    if (a > b) std::swap(a, b);
    const std::string lo = EncodeKeyU64(a), hi = EncodeKeyU64(b);
    std::vector<RowId> got;
    tree.RangeScan(Slice(lo), Slice(hi), &got);
    std::vector<RowId> want;
    for (auto it = reference.lower_bound(lo);
         it != reference.end() && it->first <= hi; ++it) {
      want.push_back(it->second);
    }
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BPlusTreeProperty,
                         ::testing::Values(10, 100, 1000, 4000));

TEST(SortedFileIndexTest, BuildThenQuery) {
  SortedFileIndex index;
  for (int i = 9; i >= 0; --i) {
    index.Append(Slice(EncodeKeyU64(static_cast<uint64_t>(i * 2))),
                 static_cast<RowId>(i));
  }
  EXPECT_FALSE(index.built());
  index.Build();
  EXPECT_TRUE(index.built());
  std::vector<RowId> rows;
  index.Lookup(Slice(EncodeKeyU64(6)), &rows);
  EXPECT_EQ(rows, (std::vector<RowId>{3}));
  rows.clear();
  index.RangeScan(Slice(EncodeKeyU64(5)), Slice(EncodeKeyU64(11)), &rows);
  EXPECT_EQ(rows, (std::vector<RowId>{3, 4, 5}));
}

TEST(SortedFileIndexTest, EmptyAndMissing) {
  SortedFileIndex index;
  index.Build();
  std::vector<RowId> rows;
  index.Lookup(Slice("x"), &rows);
  EXPECT_TRUE(rows.empty());
}

// --- R-Tree ------------------------------------------------------------

Rect RandomRect(Rng* rng, float extent = 100.0f) {
  const float x0 = static_cast<float>(rng->NextUniform(0, extent));
  const float y0 = static_cast<float>(rng->NextUniform(0, extent));
  return Rect{x0, y0, x0 + static_cast<float>(rng->NextUniform(1, 10)),
              y0 + static_cast<float>(rng->NextUniform(1, 10))};
}

TEST(RectTest, GeometryPredicates) {
  Rect a{0, 0, 10, 10};
  Rect b{5, 5, 15, 15};
  Rect c{11, 11, 12, 12};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Contains(Rect{2, 2, 3, 3}));
  EXPECT_FALSE(a.Contains(b));
  EXPECT_TRUE(a.ContainsPoint(10, 10));
  EXPECT_FLOAT_EQ(a.Union(c).Area(), 144.0f);
  EXPECT_FLOAT_EQ(a.Enlargement(Rect{0, 0, 10, 12}), 20.0f);
}

class RTreeProperty : public ::testing::TestWithParam<int> {};

TEST_P(RTreeProperty, IntersectionMatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 13);
  RTree tree(8);
  std::vector<Rect> rects;
  for (int i = 0; i < GetParam(); ++i) {
    Rect r = RandomRect(&rng);
    tree.Insert(r, static_cast<RowId>(i));
    rects.push_back(r);
  }
  EXPECT_EQ(tree.size(), static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    const Rect query = RandomRect(&rng);
    std::vector<RowId> got;
    tree.SearchIntersects(query, &got);
    std::set<RowId> want;
    for (size_t i = 0; i < rects.size(); ++i) {
      if (rects[i].Intersects(query)) want.insert(static_cast<RowId>(i));
    }
    EXPECT_EQ(std::set<RowId>(got.begin(), got.end()), want);
  }
}

TEST_P(RTreeProperty, ContainmentMatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 17);
  RTree tree(8);
  std::vector<Rect> rects;
  for (int i = 0; i < GetParam(); ++i) {
    Rect r = RandomRect(&rng);
    tree.Insert(r, static_cast<RowId>(i));
    rects.push_back(r);
  }
  for (int trial = 0; trial < 10; ++trial) {
    Rect query = RandomRect(&rng);
    query.x1 += 20;
    query.y1 += 20;
    std::vector<RowId> got;
    tree.SearchContained(query, &got);
    std::set<RowId> want;
    for (size_t i = 0; i < rects.size(); ++i) {
      if (query.Contains(rects[i])) want.insert(static_cast<RowId>(i));
    }
    EXPECT_EQ(std::set<RowId>(got.begin(), got.end()), want);
  }
}

TEST_P(RTreeProperty, PointQueriesMatchBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 19);
  RTree tree(8);
  std::vector<Rect> rects;
  for (int i = 0; i < GetParam(); ++i) {
    Rect r = RandomRect(&rng);
    tree.Insert(r, static_cast<RowId>(i));
    rects.push_back(r);
  }
  for (int trial = 0; trial < 20; ++trial) {
    const float x = static_cast<float>(rng.NextUniform(0, 100));
    const float y = static_cast<float>(rng.NextUniform(0, 100));
    std::vector<RowId> got;
    tree.SearchPoint(x, y, &got);
    std::set<RowId> want;
    for (size_t i = 0; i < rects.size(); ++i) {
      if (rects[i].ContainsPoint(x, y)) want.insert(static_cast<RowId>(i));
    }
    EXPECT_EQ(std::set<RowId>(got.begin(), got.end()), want);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RTreeProperty,
                         ::testing::Values(1, 10, 100, 1000));

TEST(RTreeTest, HeightGrows) {
  Rng rng(23);
  RTree tree(8);
  for (int i = 0; i < 2000; ++i) {
    tree.Insert(RandomRect(&rng), static_cast<RowId>(i));
  }
  EXPECT_GE(tree.height(), 3u);
}

// --- Ball-Tree -----------------------------------------------------------

std::vector<float> RandomPoints(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> pts(n * dim);
  for (auto& v : pts) v = static_cast<float>(rng.NextGaussian());
  return pts;
}

struct BallTreeCase {
  int n;
  int dim;
};

class BallTreeProperty : public ::testing::TestWithParam<BallTreeCase> {};

TEST_P(BallTreeProperty, RangeSearchMatchesBruteForce) {
  const auto [n, dim] = GetParam();
  auto pts = RandomPoints(static_cast<size_t>(n), static_cast<size_t>(dim),
                          1234);
  BallTree tree(8);
  ASSERT_TRUE(tree.Build(pts, static_cast<size_t>(dim), {}).ok());
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> query(static_cast<size_t>(dim));
    for (auto& v : query) v = static_cast<float>(rng.NextGaussian());
    const float radius = static_cast<float>(rng.NextUniform(0.5, 2.5));
    std::vector<RowId> got;
    tree.RangeSearch(query.data(), radius, &got);
    std::set<RowId> want;
    for (int i = 0; i < n; ++i) {
      const float d2 = ops::L2SquaredScalar(
          query.data(), pts.data() + static_cast<size_t>(i) * dim,
          static_cast<size_t>(dim));
      if (d2 <= radius * radius) want.insert(static_cast<RowId>(i));
    }
    EXPECT_EQ(std::set<RowId>(got.begin(), got.end()), want);
  }
}

TEST_P(BallTreeProperty, KnnMatchesBruteForce) {
  const auto [n, dim] = GetParam();
  auto pts = RandomPoints(static_cast<size_t>(n), static_cast<size_t>(dim),
                          4321);
  BallTree tree(8);
  ASSERT_TRUE(tree.Build(pts, static_cast<size_t>(dim), {}).ok());
  std::vector<float> query(static_cast<size_t>(dim), 0.1f);
  const size_t k = std::min<size_t>(5, static_cast<size_t>(n));
  std::vector<std::pair<float, RowId>> got;
  tree.KnnSearch(query.data(), k, &got);
  ASSERT_EQ(got.size(), k);
  // Reference: sort all distances.
  std::vector<std::pair<float, RowId>> all;
  for (int i = 0; i < n; ++i) {
    all.emplace_back(
        std::sqrt(ops::L2SquaredScalar(
            query.data(), pts.data() + static_cast<size_t>(i) * dim,
            static_cast<size_t>(dim))),
        static_cast<RowId>(i));
  }
  std::sort(all.begin(), all.end());
  for (size_t i = 0; i < k; ++i) {
    EXPECT_NEAR(got[i].first, all[i].first, 1e-4f) << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BallTreeProperty,
    ::testing::Values(BallTreeCase{1, 3}, BallTreeCase{50, 3},
                      BallTreeCase{500, 3}, BallTreeCase{50, 64},
                      BallTreeCase{500, 64}, BallTreeCase{2000, 16}));

TEST(BallTreeTest, PruningActuallyHappensInLowDim) {
  // In 3-d with a small radius the tree must evaluate far fewer
  // distances than brute force.
  const size_t n = 4000;
  auto pts = RandomPoints(n, 3, 777);
  BallTree tree(16);
  ASSERT_TRUE(tree.Build(pts, 3, {}).ok());
  tree.ResetCounters();
  std::vector<float> query = {0.0f, 0.0f, 0.0f};
  std::vector<RowId> out;
  tree.RangeSearch(query.data(), 0.1f, &out);
  EXPECT_LT(tree.distance_evals(), n / 2);
}

TEST(BallTreeTest, CustomRowIds) {
  std::vector<float> pts = {0, 0, 10, 10};
  BallTree tree;
  ASSERT_TRUE(tree.Build(pts, 2, {111, 222}).ok());
  std::vector<RowId> out;
  std::vector<float> query = {0.1f, 0.1f};
  tree.RangeSearch(query.data(), 1.0f, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 111u);
}

TEST(BallTreeTest, BuildValidation) {
  BallTree tree;
  EXPECT_TRUE(tree.Build({1, 2, 3}, 0, {}).IsInvalidArgument());
  EXPECT_TRUE(tree.Build({1, 2, 3}, 2, {}).IsInvalidArgument());
  EXPECT_TRUE(tree.Build({1, 2}, 2, {1, 2}).IsInvalidArgument());
  EXPECT_TRUE(tree.Build({}, 4, {}).ok());  // empty is fine
}

TEST(BallTreeTest, DuplicatePointsAllFound) {
  std::vector<float> pts(10 * 2, 1.5f);  // 10 identical 2-d points
  BallTree tree(4);
  ASSERT_TRUE(tree.Build(pts, 2, {}).ok());
  std::vector<float> query = {1.5f, 1.5f};
  std::vector<RowId> out;
  tree.RangeSearch(query.data(), 0.01f, &out);
  EXPECT_EQ(out.size(), 10u);
}

// --- LSH ------------------------------------------------------------------

TEST(LshTest, PerfectPrecisionAndUsableRecall) {
  const size_t n = 500, dim = 16;
  auto pts = RandomPoints(n, dim, 31);
  LshOptions options;
  options.num_tables = 16;
  options.bits_per_table = 8;
  LshIndex lsh(options);
  ASSERT_TRUE(lsh.Build(pts, dim, {}).ok());

  Rng rng(77);
  int found = 0, total = 0;
  for (int trial = 0; trial < 50; ++trial) {
    // Query = a stored point plus small noise → its base point is a
    // ground-truth neighbor.
    const size_t target = rng.NextU64Below(n);
    std::vector<float> query(dim);
    for (size_t d = 0; d < dim; ++d) {
      query[d] = pts[target * dim + d] +
                 0.01f * static_cast<float>(rng.NextGaussian());
    }
    std::vector<RowId> out;
    lsh.RangeSearch(query.data(), 0.5f, &out);
    ++total;
    if (std::find(out.begin(), out.end(), static_cast<RowId>(target)) !=
        out.end()) {
      ++found;
    }
    // Every reported neighbor must actually be within the radius
    // (precision 1 by construction: candidates are verified).
    for (RowId r : out) {
      const float d2 = ops::L2SquaredScalar(
          query.data(), pts.data() + static_cast<size_t>(r) * dim, dim);
      EXPECT_LE(d2, 0.5f * 0.5f + 1e-4f);
    }
  }
  EXPECT_GE(found, total * 3 / 4);  // recall >= 75% with 16 tables
}

TEST(LshTest, BuildValidation) {
  LshIndex lsh;
  EXPECT_TRUE(lsh.Build({1, 2, 3}, 0, {}).IsInvalidArgument());
  EXPECT_TRUE(lsh.Build({1, 2, 3}, 2, {}).IsInvalidArgument());
}

TEST(IndexKindTest, Names) {
  EXPECT_STREQ(IndexKindName(IndexKind::kBallTree), "ball-tree");
  EXPECT_STREQ(IndexKindName(IndexKind::kRTree), "r-tree");
}

}  // namespace
}  // namespace deeplens
