// Unit tests for storage/: file I/O, the record store (including reopen
// and corruption recovery), sorted runs, the three video layouts, the
// catalog, and the storage advisor's cost model.
#include <gtest/gtest.h>

#include <filesystem>

#include "codec/image_codec.h"
#include "common/rng.h"
#include "storage/catalog.h"
#include "storage/encoded_file.h"
#include "storage/file_io.h"
#include "storage/frame_file.h"
#include "storage/record_store.h"
#include "storage/segmented_file.h"
#include "storage/sorted_file.h"
#include "storage/storage_advisor.h"
#include "storage/video_store.h"

namespace deeplens {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dl_storage_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(StorageTest, AppendAndReadBack) {
  const std::string path = Path("f");
  {
    auto file = AppendOnlyFile::Open(path);
    ASSERT_TRUE(file.ok());
    EXPECT_EQ((*file)->Append(Slice("hello ")).value(), 0u);
    EXPECT_EQ((*file)->Append(Slice("world")).value(), 6u);
    ASSERT_TRUE((*file)->Flush().ok());
  }
  auto data = ReadWholeFile(path);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(Slice(*data).ToString(), "hello world");
}

TEST_F(StorageTest, RandomAccessReads) {
  const std::string path = Path("f");
  ASSERT_TRUE(WriteWholeFile(path, Slice("0123456789")).ok());
  auto file = RandomAccessFile::Open(path);
  ASSERT_TRUE(file.ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE((*file)->ReadAt(3, 4, &out).ok());
  EXPECT_EQ(Slice(out).ToString(), "3456");
  EXPECT_TRUE((*file)->ReadAt(8, 5, &out).IsIOError());
}

TEST_F(StorageTest, FileHelpers) {
  EXPECT_FALSE(FileExists(Path("missing")));
  ASSERT_TRUE(WriteWholeFile(Path("x"), Slice("abc")).ok());
  EXPECT_TRUE(FileExists(Path("x")));
  EXPECT_EQ(FileSize(Path("x")).value(), 3u);
  ASSERT_TRUE(RemoveFileIfExists(Path("x")).ok());
  EXPECT_FALSE(FileExists(Path("x")));
  ASSERT_TRUE(RemoveFileIfExists(Path("x")).ok());  // idempotent
}

TEST_F(StorageTest, RecordStoreBasicOps) {
  auto store = RecordStore::Open(Path("rs"));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put(Slice("k1"), Slice("v1")).ok());
  ASSERT_TRUE((*store)->Put(Slice("k2"), Slice("v2")).ok());
  EXPECT_EQ(Slice((*store)->Get(Slice("k1")).value()).ToString(), "v1");
  EXPECT_TRUE((*store)->Get(Slice("zz")).status().IsNotFound());
  EXPECT_TRUE((*store)->Contains(Slice("k2")));
  // Overwrite wins.
  ASSERT_TRUE((*store)->Put(Slice("k1"), Slice("v1b")).ok());
  EXPECT_EQ(Slice((*store)->Get(Slice("k1")).value()).ToString(), "v1b");
  // Delete.
  ASSERT_TRUE((*store)->Delete(Slice("k2")).ok());
  EXPECT_FALSE((*store)->Contains(Slice("k2")));
  EXPECT_EQ((*store)->Stats().num_records, 1u);
}

TEST_F(StorageTest, RecordStoreScanIsOrderedAndBounded) {
  auto store = RecordStore::Open(Path("rs"));
  ASSERT_TRUE(store.ok());
  for (int i = 9; i >= 0; --i) {
    ASSERT_TRUE((*store)
                    ->Put(Slice(EncodeKeyU64(static_cast<uint64_t>(i))),
                          Slice("v" + std::to_string(i)))
                    .ok());
  }
  std::vector<uint64_t> seen;
  ASSERT_TRUE((*store)
                  ->Scan(Slice(EncodeKeyU64(3)), Slice(EncodeKeyU64(7)),
                         [&](const Slice& key, const Slice&) {
                           seen.push_back(DecodeKeyU64(key).value());
                           return true;
                         })
                  .ok());
  EXPECT_EQ(seen, (std::vector<uint64_t>{3, 4, 5, 6, 7}));
}

TEST_F(StorageTest, RecordStoreSurvivesReopen) {
  const std::string path = Path("rs");
  {
    auto store = RecordStore::Open(path);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE((*store)
                      ->Put(Slice("key" + std::to_string(i)),
                            Slice("value" + std::to_string(i)))
                      .ok());
    }
    ASSERT_TRUE((*store)->Delete(Slice("key50")).ok());
  }
  auto store = RecordStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->Stats().num_records, 99u);
  EXPECT_EQ(Slice((*store)->Get(Slice("key7")).value()).ToString(),
            "value7");
  EXPECT_TRUE((*store)->Get(Slice("key50")).status().IsNotFound());
}

TEST_F(StorageTest, RecordStoreIgnoresTornTail) {
  const std::string path = Path("rs");
  {
    auto store = RecordStore::Open(path);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put(Slice("good"), Slice("data")).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  {
    // Simulate a crash mid-append: garbage tail bytes.
    auto file = AppendOnlyFile::Open(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(Slice("\x01\x02\x03")).ok());
  }
  auto store = RecordStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(Slice((*store)->Get(Slice("good")).value()).ToString(), "data");
  EXPECT_EQ((*store)->Stats().num_records, 1u);
}

TEST_F(StorageTest, RecordStoreLargeValues) {
  auto store = RecordStore::Open(Path("rs"));
  ASSERT_TRUE(store.ok());
  std::vector<uint8_t> big(1 << 20);
  Rng rng(1);
  for (auto& b : big) b = static_cast<uint8_t>(rng.NextU64Below(256));
  ASSERT_TRUE((*store)->Put(Slice("big"), Slice(big)).ok());
  auto got = (*store)->Get(Slice("big"));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, big);
}

TEST_F(StorageTest, SortedFileRoundTrip) {
  const std::string path = Path("run");
  {
    auto writer = SortedFileWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE((*writer)
                      ->Add(Slice(EncodeKeyU64(static_cast<uint64_t>(i))),
                            Slice("v" + std::to_string(i)))
                      .ok());
    }
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  auto reader = SortedFileReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->num_records(), 500u);
  EXPECT_EQ(Slice((*reader)->Get(Slice(EncodeKeyU64(123))).value())
                .ToString(),
            "v123");
  int count = 0;
  ASSERT_TRUE((*reader)
                  ->Scan(Slice(EncodeKeyU64(100)), Slice(EncodeKeyU64(199)),
                         [&](const Slice&, const Slice&) {
                           ++count;
                           return true;
                         })
                  .ok());
  EXPECT_EQ(count, 100);
}

TEST_F(StorageTest, SortedFileRejectsOutOfOrder) {
  auto writer = SortedFileWriter::Create(Path("run"));
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Add(Slice("b"), Slice("1")).ok());
  EXPECT_TRUE((*writer)->Add(Slice("a"), Slice("2")).IsInvalidArgument());
  ASSERT_TRUE((*writer)->Add(Slice("b"), Slice("3")).ok());  // equal ok
}

Image TestFrame(int f, int w = 32, int h = 24) {
  // Static textured background (same for every frame, like a fixed
  // camera) plus a frame-dependent moving bright block.
  Image img(w, h, 3);
  Rng rng(777);
  for (auto& b : img.bytes()) {
    b = static_cast<uint8_t>(100 + rng.NextU64Below(20));
  }
  const int x0 = (f * 3) % std::max(1, w - 6);
  for (int y = 8; y < std::min(h, 14); ++y) {
    for (int x = x0; x < x0 + 6; ++x) {
      for (int c = 0; c < 3; ++c) img.At(x, y, c) = 230;
    }
  }
  img.At(f % w, 0, 0) = 255;  // frame-number signature pixel
  return img;
}

class VideoLayoutTest : public StorageTest,
                        public ::testing::WithParamInterface<VideoFormat> {};

TEST_P(VideoLayoutTest, WriteReadRoundTrip) {
  const std::string path = Path("video");
  VideoStoreOptions options;
  options.format = GetParam();
  options.quality = codec::Quality::kHigh;
  options.clip_frames = 8;
  options.gop_size = 8;
  {
    auto writer = CreateVideoWriter(path, options);
    ASSERT_TRUE(writer.ok());
    for (int f = 0; f < 30; ++f) {
      ASSERT_TRUE((*writer)->AddFrame(TestFrame(f)).ok());
    }
    ASSERT_TRUE((*writer)->Finish().ok());
    EXPECT_EQ((*writer)->frames_written(), 30);
  }
  auto reader = OpenVideo(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->num_frames(), 30);
  EXPECT_EQ((*reader)->format(), GetParam());
  // Random access to a middle frame.
  auto frame = (*reader)->ReadFrame(17);
  ASSERT_TRUE(frame.ok());
  const double mad = Image::MeanAbsDiff(*frame, TestFrame(17));
  if (GetParam() == VideoFormat::kFrameRaw) {
    EXPECT_EQ(mad, 0.0);
  } else {
    EXPECT_LE(mad, 6.0);
  }
  EXPECT_TRUE((*reader)->ReadFrame(30).status().IsOutOfRange());
  EXPECT_TRUE((*reader)->ReadFrame(-1).status().IsOutOfRange());
}

TEST_P(VideoLayoutTest, ReadRangeVisitsExactFrames) {
  const std::string path = Path("video");
  VideoStoreOptions options;
  options.format = GetParam();
  options.clip_frames = 8;
  options.gop_size = 8;
  {
    auto writer = CreateVideoWriter(path, options);
    ASSERT_TRUE(writer.ok());
    for (int f = 0; f < 40; ++f) {
      ASSERT_TRUE((*writer)->AddFrame(TestFrame(f)).ok());
    }
    ASSERT_TRUE((*writer)->Finish().ok());
  }
  auto reader = OpenVideo(path);
  ASSERT_TRUE(reader.ok());
  std::vector<int> visited;
  ASSERT_TRUE((*reader)
                  ->ReadRange(13, 22,
                              [&](int f, const Image&) {
                                visited.push_back(f);
                                return true;
                              })
                  .ok());
  std::vector<int> want;
  for (int f = 13; f <= 22; ++f) want.push_back(f);
  EXPECT_EQ(visited, want);
}

INSTANTIATE_TEST_SUITE_P(Formats, VideoLayoutTest,
                         ::testing::Values(VideoFormat::kFrameRaw,
                                           VideoFormat::kFrameLjpg,
                                           VideoFormat::kEncoded,
                                           VideoFormat::kSegmented));

TEST_F(StorageTest, DecodeWorkReflectsLayoutPushdownCapability) {
  // The Figure 3 mechanism: for a mid-video range read, the frame file
  // decodes only the range; the segmented file decodes at most one extra
  // clip; the encoded file decodes the whole prefix.
  const int kFrames = 60;
  auto write = [&](VideoFormat format, const std::string& name) {
    VideoStoreOptions options;
    options.format = format;
    options.clip_frames = 10;
    options.gop_size = 10;
    auto writer = CreateVideoWriter(Path(name), options);
    EXPECT_TRUE(writer.ok());
    for (int f = 0; f < kFrames; ++f) {
      EXPECT_TRUE((*writer)->AddFrame(TestFrame(f)).ok());
    }
    EXPECT_TRUE((*writer)->Finish().ok());
  };
  write(VideoFormat::kFrameRaw, "raw");
  write(VideoFormat::kEncoded, "enc");
  write(VideoFormat::kSegmented, "seg");

  auto decode_work = [&](const std::string& name) -> uint64_t {
    auto reader = OpenVideo(Path(name));
    EXPECT_TRUE(reader.ok());
    EXPECT_TRUE(
        (*reader)
            ->ReadRange(45, 54, [](int, const Image&) { return true; })
            .ok());
    return (*reader)->frames_decoded();
  };
  EXPECT_EQ(decode_work("raw"), 10u);   // exact push-down
  EXPECT_EQ(decode_work("seg"), 15u);   // clip 40..49 prefix + range
  EXPECT_EQ(decode_work("enc"), 55u);   // full prefix 0..54
}

TEST_F(StorageTest, StorageFootprintOrdering) {
  const int kFrames = 48;
  auto bytes_for = [&](VideoFormat format,
                       const std::string& name) -> uint64_t {
    VideoStoreOptions options;
    options.format = format;
    options.clip_frames = 12;
    options.gop_size = 12;
    auto writer = CreateVideoWriter(Path(name), options);
    EXPECT_TRUE(writer.ok());
    for (int f = 0; f < kFrames; ++f) {
      EXPECT_TRUE((*writer)->AddFrame(TestFrame(f, 64, 48)).ok());
    }
    EXPECT_TRUE((*writer)->Finish().ok());
    auto reader = OpenVideo(Path(name));
    EXPECT_TRUE(reader.ok());
    return (*reader)->storage_bytes();
  };
  const uint64_t raw = bytes_for(VideoFormat::kFrameRaw, "r");
  const uint64_t intra = bytes_for(VideoFormat::kFrameLjpg, "i");
  const uint64_t seg = bytes_for(VideoFormat::kSegmented, "s");
  const uint64_t enc = bytes_for(VideoFormat::kEncoded, "e");
  EXPECT_LT(intra, raw);
  EXPECT_LT(seg, intra);
  EXPECT_LE(enc, seg);
}

TEST_F(StorageTest, CatalogPersistsAcrossReopen) {
  {
    auto catalog = Catalog::Open(dir_.string());
    ASSERT_TRUE(catalog.ok());
    DatasetInfo info;
    info.name = "traffic";
    info.path = Path("traffic");
    info.format = VideoFormat::kSegmented;
    info.num_items = 42;
    info.description = "test video";
    ASSERT_TRUE((*catalog)->Register(info).ok());
  }
  auto catalog = Catalog::Open(dir_.string());
  ASSERT_TRUE(catalog.ok());
  auto info = (*catalog)->Lookup("traffic");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->format, VideoFormat::kSegmented);
  EXPECT_EQ(info->num_items, 42);
  EXPECT_EQ(info->description, "test video");
  EXPECT_TRUE((*catalog)->Lookup("nope").status().IsNotFound());
  EXPECT_EQ((*catalog)->List().size(), 1u);
  ASSERT_TRUE((*catalog)->Unregister("traffic").ok());
  EXPECT_FALSE((*catalog)->Contains("traffic"));
}

TEST_F(StorageTest, CatalogRejectsEmptyName) {
  auto catalog = Catalog::Open(dir_.string());
  ASSERT_TRUE(catalog.ok());
  EXPECT_TRUE((*catalog)->Register(DatasetInfo{}).IsInvalidArgument());
}

// --- Storage advisor -------------------------------------------------------

WorkloadProfile BaseProfile() {
  WorkloadProfile p;
  p.num_frames = 10000;
  p.raw_frame_bytes = 100000;
  p.temporal_selectivity = 0.05;
  p.expected_queries = 10;
  return p;
}

TEST(StorageAdvisorTest, SelectiveWorkloadAvoidsEncodedFile) {
  StorageAdvisor advisor;
  auto advice = advisor.Recommend(BaseProfile());
  // With highly selective queries the sequential-decode tax dominates.
  EXPECT_NE(advice.options.format, VideoFormat::kEncoded);
}

TEST(StorageAdvisorTest, TightBudgetForcesCompression) {
  StorageAdvisor advisor;
  WorkloadProfile p = BaseProfile();
  const uint64_t raw = advisor.PredictStorage(p, VideoFormat::kFrameRaw);
  auto advice = advisor.Recommend(p, raw / 20);
  EXPECT_TRUE(advice.options.format == VideoFormat::kEncoded ||
              advice.options.format == VideoFormat::kSegmented);
  EXPECT_LE(advice.predicted_storage_bytes, raw / 20);
}

TEST(StorageAdvisorTest, UnconstrainedWorkloadPrefersCheapestReads) {
  StorageAdvisor advisor;
  WorkloadProfile p = BaseProfile();
  p.temporal_selectivity = 1.0;
  auto advice = advisor.Recommend(p, 0);
  // With no storage budget the objective is pure query latency, and raw
  // frame reads are the cheapest decode path.
  EXPECT_EQ(advice.options.format, VideoFormat::kFrameRaw);
  EXPECT_GT(advice.predicted_storage_bytes, 0u);
}

TEST(StorageAdvisorTest, PredictionsAreMonotonic) {
  StorageAdvisor advisor;
  WorkloadProfile p = BaseProfile();
  EXPECT_GT(advisor.PredictStorage(p, VideoFormat::kFrameRaw),
            advisor.PredictStorage(p, VideoFormat::kFrameLjpg));
  EXPECT_GT(advisor.PredictStorage(p, VideoFormat::kFrameLjpg),
            advisor.PredictStorage(p, VideoFormat::kEncoded));
  // Query cost grows with selectivity for any layout.
  VideoStoreOptions o;
  o.format = VideoFormat::kFrameRaw;
  WorkloadProfile narrow = p, wide = p;
  narrow.temporal_selectivity = 0.01;
  wide.temporal_selectivity = 0.5;
  EXPECT_LT(advisor.PredictQuerySeconds(narrow, o),
            advisor.PredictQuerySeconds(wide, o));
}

TEST(StorageAdvisorTest, UnsatisfiableBudgetFallsBack) {
  StorageAdvisor advisor;
  auto advice = advisor.Recommend(BaseProfile(), 1);
  EXPECT_EQ(advice.options.format, VideoFormat::kEncoded);
  EXPECT_FALSE(advice.rationale.empty());
}

}  // namespace
}  // namespace deeplens
