// Tests for the persistent inference cache (materialized UDF views on
// RecordStore) and the cache-layer bugfix sweep that made keys safe to
// put on disk: value serialization round-trips, spill/warm-load across
// reopen, the restart differential (cold run == warm-restart run,
// byte-identical), torn-tail crash recovery, stale-spill invalidation,
// delimiter-proof cache keys, the oversized-GOP fallback path, and heap-
// aware budget accounting. The contention tests run under ThreadSanitizer
// in CI.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>
#include <thread>

#include "cache/cache_config.h"
#include "cache/inference_cache.h"
#include "cache/persistent_cache.h"
#include "cache/segment_cache.h"
#include "common/bytes.h"
#include "common/env.h"
#include "common/rng.h"
#include "core/database.h"
#include "core/query.h"
#include "exec/nn_udf.h"
#include "nn/device.h"
#include "sim/scene.h"
#include "storage/record_store.h"
#include "storage/video_store.h"

namespace deeplens {
namespace {

// --- InferenceValue wire format ------------------------------------------

std::vector<uint8_t> Encode(const InferenceValue& value) {
  ByteBuffer buf;
  value.SerializeInto(&buf);
  return buf.data();
}

TEST(InferenceValueWireTest, AllFourVariantsRoundTrip) {
  {
    auto parsed = InferenceValue::Parse(
        Slice(Encode(InferenceValue{std::string("plate-774")})));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(std::get<std::string>(parsed->payload), "plate-774");
  }
  {
    auto parsed =
        InferenceValue::Parse(Slice(Encode(InferenceValue{12.3125})));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(std::get<double>(parsed->payload), 12.3125);
  }
  {
    Tensor t({2, 3}, {1.0f, -2.5f, 3.0f, 0.0f, 4.25f, -0.125f});
    auto parsed = InferenceValue::Parse(Slice(Encode(InferenceValue{t})));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    const Tensor& back = std::get<Tensor>(parsed->payload);
    ASSERT_EQ(back.shape(), t.shape());
    for (int64_t i = 0; i < t.size(); ++i) {
      EXPECT_EQ(back[i], t[i]) << "element " << i;  // exact, not AllClose
    }
  }
  {
    std::vector<nn::Detection> dets(2);
    dets[0] = nn::Detection{nn::BBox{1, 2, 30, 40}, nn::ObjectClass::kPerson,
                            0.875f};
    dets[1] = nn::Detection{nn::BBox{-3, 0, 7, 9}, nn::ObjectClass::kText,
                            0.0625f};
    auto parsed =
        InferenceValue::Parse(Slice(Encode(InferenceValue{dets})));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    const auto& back = std::get<std::vector<nn::Detection>>(parsed->payload);
    ASSERT_EQ(back.size(), 2u);
    for (size_t i = 0; i < 2; ++i) {
      EXPECT_EQ(back[i].bbox.x0, dets[i].bbox.x0);
      EXPECT_EQ(back[i].bbox.y0, dets[i].bbox.y0);
      EXPECT_EQ(back[i].bbox.x1, dets[i].bbox.x1);
      EXPECT_EQ(back[i].bbox.y1, dets[i].bbox.y1);
      EXPECT_EQ(back[i].label, dets[i].label);
      EXPECT_EQ(back[i].score, dets[i].score);
    }
  }
  // Empty payloads are legal values, not corruption.
  {
    auto parsed = InferenceValue::Parse(
        Slice(Encode(InferenceValue{std::string()})));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(std::get<std::string>(parsed->payload), "");
  }
  {
    // Rank-0 is ambiguous between the default empty tensor (0 elements)
    // and a scalar (1 element); the explicit count disambiguates both.
    auto parsed =
        InferenceValue::Parse(Slice(Encode(InferenceValue{Tensor()})));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(std::get<Tensor>(parsed->payload).size(), 0);
    EXPECT_EQ(std::get<Tensor>(parsed->payload).rank(), 0u);

    Tensor scalar(std::vector<int64_t>{});  // rank 0, one element
    scalar[0] = 6.5f;
    auto scalar_parsed =
        InferenceValue::Parse(Slice(Encode(InferenceValue{scalar})));
    ASSERT_TRUE(scalar_parsed.ok()) << scalar_parsed.status().ToString();
    const Tensor& back = std::get<Tensor>(scalar_parsed->payload);
    EXPECT_EQ(back.rank(), 0u);
    ASSERT_EQ(back.size(), 1);
    EXPECT_EQ(back[0], 6.5f);
  }
  {
    auto parsed = InferenceValue::Parse(
        Slice(Encode(InferenceValue{std::vector<nn::Detection>{}})));
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(
        std::get<std::vector<nn::Detection>>(parsed->payload).empty());
  }
}

TEST(InferenceValueWireTest, RejectsVersionTagAndTruncationCorruption) {
  std::vector<uint8_t> good = Encode(InferenceValue{std::string("abc")});

  std::vector<uint8_t> bad_version = good;
  bad_version[0] = InferenceValue::kFormatVersion + 1;
  EXPECT_FALSE(InferenceValue::Parse(Slice(bad_version)).ok());

  std::vector<uint8_t> bad_tag = good;
  bad_tag[1] = 0x7e;
  EXPECT_FALSE(InferenceValue::Parse(Slice(bad_tag)).ok());

  for (size_t n = 0; n < good.size(); ++n) {
    EXPECT_FALSE(
        InferenceValue::Parse(Slice(good.data(), n)).ok())
        << "prefix length " << n << " parsed";
  }

  std::vector<uint8_t> trailing = good;
  trailing.push_back(0);
  EXPECT_FALSE(InferenceValue::Parse(Slice(trailing)).ok());

  // A tensor whose declared shape promises more data than the record
  // holds must be corruption, not an allocation.
  ByteBuffer huge;
  huge.PutU8(InferenceValue::kFormatVersion);
  huge.PutU8(2);           // tensor tag
  huge.PutVarint(2);       // rank
  huge.PutI64(1 << 20);    // dims promise 2^40 elements
  huge.PutI64(1 << 20);
  EXPECT_FALSE(InferenceValue::Parse(huge.AsSlice()).ok());

  // Dims crafted so the running element product wraps uint64 back to 0
  // must not smuggle an implausible shape past the size cap.
  ByteBuffer wrap;
  wrap.PutU8(InferenceValue::kFormatVersion);
  wrap.PutU8(2);
  wrap.PutVarint(2);
  wrap.PutI64(int64_t{1} << 30);
  wrap.PutI64(int64_t{1} << 34);  // 2^30 * 2^34 == 2^64 ≡ 0 (mod 2^64)
  EXPECT_FALSE(InferenceValue::Parse(wrap.AsSlice()).ok());
}

// --- Heap-aware budget accounting ----------------------------------------

TEST(InferenceValueByteSizeTest, ChargesHeapCapacityNotJustSize) {
  const InferenceValue scalar{1.0};
  EXPECT_GE(scalar.ByteSize(), sizeof(InferenceValue));

  std::string big(200, 'x');
  EXPECT_GE(InferenceValue{big}.ByteSize(), sizeof(InferenceValue) + 200);

  // A vector that reserved far more than it holds is charged for what
  // the allocator actually committed (moved in, so capacity survives).
  std::vector<nn::Detection> dets;
  dets.reserve(32);
  dets.resize(2);
  InferenceValue det_value;
  det_value.payload = std::move(dets);
  EXPECT_GE(det_value.ByteSize(),
            sizeof(InferenceValue) + 32 * sizeof(nn::Detection));

  Tensor t = Tensor::FromVector(std::vector<float>(64, 1.0f));
  EXPECT_GE(InferenceValue{t}.ByteSize(),
            sizeof(InferenceValue) + 64 * sizeof(float));
}

// --- Delimiter-proof cache keys ------------------------------------------

TEST(CacheKeyTest, AdversarialComponentsNeverCollide) {
  // Under the old raw-concatenation scheme, components containing the
  // '#'/'@' separators could alias other keys; now every free-form
  // component is length-prefixed. Exhaustive distinctness over tricky
  // component sets documents the property.
  std::set<std::string> inference_keys;
  size_t expected = 0;
  for (const char* model : {"m", "m#1", "m@1", "1:m", "m#1@2", ""}) {
    for (uint64_t fp : {1ull, 12ull}) {
      for (uint64_t variant : {0ull, 1ull}) {
        inference_keys.insert(InferenceCache::KeyFor(model, fp, variant));
        ++expected;
      }
    }
  }
  EXPECT_EQ(inference_keys.size(), expected);

  std::set<std::string> stream_ids;
  expected = 0;
  for (const char* path : {"v", "v#1", "v@2", "1:v", "v#1#2"}) {
    for (uint64_t size : {1ull, 12ull}) {
      for (uint32_t crc : {2u, 22u}) {
        stream_ids.insert(SegmentCache::StreamId(path, size, crc));
        ++expected;
      }
    }
  }
  EXPECT_EQ(stream_ids.size(), expected);

  // A model literally named like a device-qualified identity must not
  // alias the real (model, device) pair.
  nn::Device* device = nn::GetDevice(nn::DeviceKind::kCpuVector);
  const std::string composite =
      std::string("m@") + device->name();
  EXPECT_NE(InferenceCache::KeyFor(
                InferenceCache::ModelOnDevice("m", device), 7),
            InferenceCache::KeyFor(composite, 7));
}

TEST(CacheKeyTest, VariantZeroIsEncodedNotDropped) {
  // frame_h == 0 is a real parameter value: it must produce the same key
  // as the default (both ARE variant 0) and a different key from any
  // other variant — the old encoding dropped the suffix for 0, so a
  // zero-parameter call aliased the bare key of any other caller.
  EXPECT_EQ(InferenceCache::KeyFor("m", 1), InferenceCache::KeyFor("m", 1, 0));
  EXPECT_NE(InferenceCache::KeyFor("m", 1, 0),
            InferenceCache::KeyFor("m", 1, 1));
  EXPECT_NE(InferenceCache::KeyFor("m", 1, 0).find("@0"), std::string::npos);
}

// --- PersistentInferenceCache --------------------------------------------

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dl_persist_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static Result<std::unique_ptr<PersistentInferenceCache>> OpenCache(
      const std::string& dir, size_t budget, size_t shards,
      CacheAdmission admission = CacheAdmission::kTinyLfu) {
    return PersistentInferenceCache::Open(dir, budget, shards, admission);
  }

  std::filesystem::path dir_;
};

TEST_F(PersistenceTest, SpillsOnCleanShutdownAndWarmLoadsOnReopen) {
  const std::string cache_dir = Path("cache");
  {
    auto cache = OpenCache(cache_dir, 1 << 20, 2);
    ASSERT_TRUE(cache.ok()) << cache.status().ToString();
    for (int i = 0; i < 20; ++i) {
      (*cache)->Put(InferenceCache::KeyFor("m", i),
                    InferenceValue{std::string("value-") + std::to_string(i)});
    }
    // Destructor spills the resident working set and flushes the log.
  }
  auto cache = OpenCache(cache_dir, 1 << 20, 2);
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();
  EXPECT_EQ((*cache)->Stats().warm_loaded, 20u);
  for (int i = 0; i < 20; ++i) {
    auto hit = (*cache)->Get(InferenceCache::KeyFor("m", i));
    ASSERT_NE(hit, nullptr) << "key " << i;
    EXPECT_EQ(std::get<std::string>(hit->payload),
              "value-" + std::to_string(i));
  }
  const CacheStats stats = (*cache)->Stats();
  EXPECT_EQ(stats.hits, 20u);  // warm-loaded entries serve from memory
  EXPECT_GT(stats.disk_entries, 0u);
}

TEST_F(PersistenceTest, EvictedEntriesAreServedFromDisk) {
  // One shard with a tiny budget: inserting many entries constantly
  // evicts, and every eviction must write through to the log. LRU
  // admission — under TinyLFU this one-shot insert storm would be
  // admission-denied (and spill directly) instead of evicting.
  auto cache = OpenCache(Path("cache"), 4 << 10, 1, CacheAdmission::kLru);
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();
  const int kEntries = 64;
  for (int i = 0; i < kEntries; ++i) {
    (*cache)->Put(InferenceCache::KeyFor("m", i),
                  InferenceValue{std::string("value-") + std::to_string(i)});
  }
  CacheStats stats = (*cache)->Stats();
  ASSERT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.spilled, 0u);
  // Every entry ever inserted is still retrievable: from memory if
  // resident, else from the spill log.
  for (int i = 0; i < kEntries; ++i) {
    auto hit = (*cache)->Get(InferenceCache::KeyFor("m", i));
    ASSERT_NE(hit, nullptr) << "key " << i;
    EXPECT_EQ(std::get<std::string>(hit->payload),
              "value-" + std::to_string(i));
  }
  stats = (*cache)->Stats();
  EXPECT_GT(stats.disk_hits, 0u);
}

TEST_F(PersistenceTest, OversizedValuesBypassMemoryStraightToDisk) {
  auto cache = OpenCache(Path("cache"), 2 << 10, 1);
  ASSERT_TRUE(cache.ok());
  const std::string big(8 << 10, 'x');  // larger than the whole budget
  (*cache)->Put(InferenceCache::KeyFor("m", 1), InferenceValue{big});
  CacheStats stats = (*cache)->Stats();
  EXPECT_GT(stats.rejected, 0u);
  EXPECT_GT(stats.spilled, 0u);
  // Memory refused it, the log serves it... every time, since promotion
  // is also rejected.
  for (int rep = 0; rep < 2; ++rep) {
    auto hit = (*cache)->Get(InferenceCache::KeyFor("m", 1));
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(std::get<std::string>(hit->payload), big);
  }
  EXPECT_GE((*cache)->Stats().disk_hits, 2u);
}

TEST_F(PersistenceTest, SecondWriterOnSameLogIsRefused) {
  const std::string cache_dir = Path("cache");
  auto first = OpenCache(cache_dir, 1 << 20, 2);
  ASSERT_TRUE(first.ok());
  (*first)->Put(InferenceCache::KeyFor("m", 1),
                InferenceValue{std::string("v")});

  // The RecordStore log is single-writer: a second opener — this same
  // process or another — must be refused, not allowed to interleave
  // appends and corrupt the shared tail.
  auto second = OpenCache(cache_dir, 1 << 20, 2);
  EXPECT_FALSE(second.ok());

  // A Database pointed at the locked dir degrades to volatile caching
  // rather than failing to open.
  auto db = Database::Open(Path("db"));
  ASSERT_TRUE(db.ok());
  CacheConfig config;
  config.budget_bytes = 8 << 20;
  config.cache_dir = cache_dir;
  (*db)->ConfigureCaches(config);
  EXPECT_FALSE((*db)->inference_cache()->persistent());

  // Releasing the first writer frees the log for a successor.
  first->reset();
  auto third = OpenCache(cache_dir, 1 << 20, 2);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_EQ((*third)->Stats().warm_loaded, 1u);
}

TEST_F(PersistenceTest, TornLogTailIsDroppedNotFatal) {
  const std::string cache_dir = Path("cache");
  std::string log_path;
  {
    auto cache = OpenCache(cache_dir, 1 << 20, 2);
    ASSERT_TRUE(cache.ok());
    log_path = (*cache)->log_path();
    for (int i = 0; i < 10; ++i) {
      (*cache)->Put(InferenceCache::KeyFor("m", i),
                    InferenceValue{std::string("v") + std::to_string(i)});
    }
  }
  // Simulate a crash mid-append: garbage at the tail of the log.
  {
    std::FILE* f = std::fopen(log_path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char garbage[] = "\x13torn-write\xff\xfe";
    std::fwrite(garbage, 1, sizeof(garbage), f);
    std::fclose(f);
  }
  auto cache = OpenCache(cache_dir, 1 << 20, 2);
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();
  EXPECT_EQ((*cache)->Stats().warm_loaded, 10u);
  for (int i = 0; i < 10; ++i) {
    auto hit = (*cache)->Get(InferenceCache::KeyFor("m", i));
    ASSERT_NE(hit, nullptr) << "key " << i;
    EXPECT_EQ(std::get<std::string>(hit->payload),
              "v" + std::to_string(i));
  }
}

TEST_F(PersistenceTest, TruncatedFinalRecordLosesOnlyThatRecord) {
  const std::string cache_dir = Path("cache");
  std::string log_path;
  {
    auto cache = OpenCache(cache_dir, 1 << 20, 2);
    ASSERT_TRUE(cache.ok());
    log_path = (*cache)->log_path();
    for (int i = 0; i < 10; ++i) {
      (*cache)->Put(InferenceCache::KeyFor("m", i),
                    InferenceValue{std::string("v") + std::to_string(i)});
    }
  }
  const auto full_size = std::filesystem::file_size(log_path);
  std::filesystem::resize_file(log_path, full_size - 3);
  auto cache = OpenCache(cache_dir, 1 << 20, 2);
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();
  // Exactly the torn final record is gone; everything before it reads.
  EXPECT_EQ((*cache)->Stats().warm_loaded, 9u);
}

TEST_F(PersistenceTest, StaleSpillsAreInvalidatedNotMisread) {
  const std::string cache_dir = Path("cache");
  nn::Device* scalar = nn::GetDevice(nn::DeviceKind::kCpuScalar);
  nn::Device* vector = nn::GetDevice(nn::DeviceKind::kCpuVector);
  const std::string scalar_key = InferenceCache::KeyFor(
      InferenceCache::ModelOnDevice(model_names::kOcr, scalar), 42);
  const std::string vector_key = InferenceCache::KeyFor(
      InferenceCache::ModelOnDevice(model_names::kOcr, vector), 42);
  const std::string versioned_key = InferenceCache::KeyFor("m", 7);
  std::string log_path;
  {
    auto cache = OpenCache(cache_dir, 1 << 20, 2);
    ASSERT_TRUE(cache.ok());
    log_path = (*cache)->log_path();
    (*cache)->Put(scalar_key, InferenceValue{std::string("scalar-text")});
  }
  // A future format version lands in the same log (e.g. written by a
  // newer build before a rollback).
  {
    auto store = RecordStore::Open(log_path);
    ASSERT_TRUE(store.ok());
    ByteBuffer future;
    future.PutU8(InferenceValue::kFormatVersion + 1);
    future.PutU8(0);
    future.PutLengthPrefixed(Slice(std::string("from-the-future")));
    ASSERT_TRUE((*store)->Put(Slice(versioned_key), future.AsSlice()).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  auto cache = OpenCache(cache_dir, 1 << 20, 2);
  ASSERT_TRUE(cache.ok());
  // Device identity is part of the key: results produced on the scalar
  // backend can never answer a vector-backend probe.
  EXPECT_EQ((*cache)->Get(vector_key), nullptr);
  ASSERT_NE((*cache)->Get(scalar_key), nullptr);
  // The alien-versioned record is a miss (and gets dropped), never a
  // misparse.
  EXPECT_EQ((*cache)->Get(versioned_key), nullptr);
  EXPECT_GT((*cache)->Stats().disk_misses, 0u);
}

// --- Restart differential over real NN UDF queries -----------------------

Image DigitPanel(int digit) {
  Image panel(30, 30, 3);
  for (auto& b : panel.bytes()) b = 25;
  sim::DrawDigits(&panel, nn::BBox{0, 0, 30, 30}, std::to_string(digit));
  return panel;
}

PatchCollection PanelViewForSeed(uint64_t seed, int n) {
  Rng rng(seed);
  PatchCollection patches;
  patches.reserve(n);
  for (int i = 0; i < n; ++i) {
    Patch p;
    p.set_id(static_cast<PatchId>(i + 1));
    p.set_ref(ImgRef{"panels", i, kInvalidPatchId});
    if (rng.NextU64Below(100) < 60) {
      p.set_pixels(DigitPanel(static_cast<int>(rng.NextU64Below(10))));
    } else {
      Image noise(30, 30, 3);
      for (auto& b : noise.bytes()) {
        b = static_cast<uint8_t>(rng.NextU64Below(40));
      }
      p.set_pixels(std::move(noise));
    }
    p.set_bbox(nn::BBox{0, 0, 30, 30});
    p.mutable_meta().Set(meta_keys::kFrameNo, int64_t{i});
    patches.push_back(std::move(p));
  }
  return patches;
}

std::vector<uint8_t> SerializeAll(const PatchCollection& patches) {
  ByteBuffer buf;
  buf.PutU64(patches.size());
  for (const Patch& p : patches) p.SerializeInto(&buf);
  return buf.data();
}

TEST_F(PersistenceTest, RestartRunIsByteIdenticalAndInferenceFree) {
  const std::string cache_dir = Path("cache");
  const uint64_t kSeed = 0xbeef;
  const int kPanels = 30;

  auto run = [&](const std::string& db_root, bool use_cache,
                 CacheStats* stats_out) -> std::vector<uint8_t> {
    auto db = Database::Open(Path(db_root));
    DL_CHECK_OK(db.status());
    if (use_cache) {
      CacheConfig config;
      config.budget_bytes = 16 << 20;
      config.cache_dir = cache_dir;
      (*db)->ConfigureCaches(config);
    }
    DL_CHECK_OK(
        (*db)->RegisterView("panels", PanelViewForSeed(kSeed, kPanels)));
    Query query(db->get(), "panels");
    InferenceCache* cache =
        use_cache ? (*db)->inference_cache() : nullptr;
    query.Where(Gt(DepthUdf(0, (*db)->depth_model(), 240, cache), Lit(1.0)));
    query.Where(Ne(OcrTextUdf(0, (*db)->ocr(), cache), Lit("")));
    auto result = query.Execute();
    DL_CHECK_OK(result.status());
    if (stats_out != nullptr) *stats_out = (*db)->inference_cache()->Stats();
    return SerializeAll(*result);
  };

  const std::vector<uint8_t> plain = run("db_plain", false, nullptr);
  CacheStats cold_stats;
  const std::vector<uint8_t> cold = run("db_cold", true, &cold_stats);
  EXPECT_GT(cold_stats.insertions, 0u);

  CacheStats warm_stats;
  const std::vector<uint8_t> warm = run("db_warm", true, &warm_stats);

  // The differential: cache-off, cold persistent, and warm-restart
  // persistent runs are byte-identical.
  EXPECT_EQ(cold, plain);
  EXPECT_EQ(warm, plain);

  // And the restart really was served by the persisted views: every
  // lookup hit (memory after warm-load, or disk), and no new entries
  // were inserted by fresh inference (insertions == what the warm load
  // itself put in memory).
  EXPECT_GT(warm_stats.warm_loaded, 0u);
  EXPECT_GT(warm_stats.hits + warm_stats.disk_hits, 0u);
  EXPECT_EQ(warm_stats.insertions, warm_stats.warm_loaded);
  EXPECT_EQ(warm_stats.misses, warm_stats.disk_hits);
}

TEST_F(PersistenceTest, ExplainReportsPersistentProvenance) {
  auto db = Database::Open(Path("db"));
  ASSERT_TRUE(db.ok());
  CacheConfig config;
  config.budget_bytes = 8 << 20;
  config.cache_dir = Path("cache");
  (*db)->ConfigureCaches(config);
  ASSERT_TRUE((*db)->inference_cache()->persistent());
  ASSERT_TRUE(
      (*db)->RegisterView("panels", PanelViewForSeed(1, 4)).ok());

  Query query(db->get(), "panels");
  query.Where(Eq(OcrTextUdf(0, (*db)->ocr(), (*db)->inference_cache()),
                 Lit("7")));
  auto plan = query.Explain();
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->udfs.size(), 1u);
  EXPECT_TRUE(plan->udfs[0].cached);
  EXPECT_TRUE(plan->udfs[0].persistent);
  EXPECT_NE(plan->description.find("persistent inference cache"),
            std::string::npos);

  // Volatile configuration keeps the old wording (and flag).
  CacheConfig volatile_config;
  volatile_config.budget_bytes = 8 << 20;
  (*db)->ConfigureCaches(volatile_config);
  EXPECT_FALSE((*db)->inference_cache()->persistent());
  Query vquery(db->get(), "panels");
  vquery.Where(Eq(OcrTextUdf(0, (*db)->ocr(), (*db)->inference_cache()),
                  Lit("7")));
  auto vplan = vquery.Explain();
  ASSERT_TRUE(vplan.ok());
  EXPECT_FALSE(vplan->udfs[0].persistent);
  EXPECT_EQ(vplan->description.find("persistent"), std::string::npos);
}

TEST_F(PersistenceTest, CacheDirEnvKnobIsValidated) {
  struct EnvGuard {
    explicit EnvGuard(const char* name) : name_(name) {
      const char* old = std::getenv(name);
      had_value_ = old != nullptr;
      if (had_value_) saved_ = old;
    }
    ~EnvGuard() {
      if (had_value_) {
        ::setenv(name_, saved_.c_str(), 1);
      } else {
        ::unsetenv(name_);
      }
    }
    const char* name_;
    std::string saved_;
    bool had_value_ = false;
  } guard("DEEPLENS_CACHE_DIR");

  ::unsetenv("DEEPLENS_CACHE_DIR");
  EXPECT_EQ(CacheConfig::FromEnv().cache_dir, "");

  ::setenv("DEEPLENS_CACHE_DIR", Path("cache").c_str(), 1);
  EXPECT_EQ(CacheConfig::FromEnv().cache_dir, Path("cache"));

  for (const char* bad : {"", "   ", "\t", "a\nb"}) {
    ::setenv("DEEPLENS_CACHE_DIR", bad, 1);
    EXPECT_EQ(CacheConfig::FromEnv().cache_dir, "") << "value: '" << bad
                                                    << "'";
  }
}

TEST_F(PersistenceTest, WrongTypedLiveRecordIsOverwrittenOnRespill) {
  // A log written by a build that changed a payload type without bumping
  // the format version parses fine but holds the wrong alternative. The
  // Cached* wrappers recompute on such hits; the recomputed value must
  // overwrite the stale record (not be skipped as "already live"), or
  // every restart re-runs inference for that key forever.
  const std::string cache_dir = Path("cache");
  const uint64_t kFp = 42;
  nn::Device* device = nn::GetDevice(nn::DeviceKind::kCpuVector);
  const std::string key = InferenceCache::KeyFor(
      InferenceCache::ModelOnDevice(model_names::kOcr, device), kFp);
  {
    std::filesystem::create_directories(cache_dir);
    auto store = RecordStore::Open(cache_dir + "/" +
                                   PersistentInferenceCache::kLogFileName);
    ASSERT_TRUE(store.ok());
    ByteBuffer wrong_type;
    InferenceValue{3.5}.SerializeInto(&wrong_type);  // double under an OCR key
    ASSERT_TRUE((*store)->Put(Slice(key), wrong_type.AsSlice()).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  nn::TinyOcr ocr;
  const Image panel = DigitPanel(7);
  std::string recognized;
  {
    auto cache = OpenCache(cache_dir, 1 << 20, 2);
    ASSERT_TRUE(cache.ok());
    EXPECT_EQ((*cache)->Stats().warm_loaded, 1u);  // wrong-typed but parseable
    auto text = CachedOcrText(ocr, panel, kFp, device, cache->get());
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    recognized = *text;  // recomputed despite the (wrong-typed) hit
    // Shutdown respills; the divergent record must be overwritten.
  }
  auto cache = OpenCache(cache_dir, 1 << 20, 2);
  ASSERT_TRUE(cache.ok());
  auto hit = (*cache)->Get(key);
  ASSERT_NE(hit, nullptr);
  const std::string* text = std::get_if<std::string>(&hit->payload);
  ASSERT_NE(text, nullptr) << "stale wrong-typed record survived the respill";
  EXPECT_EQ(*text, recognized);
}

// --- Oversized-GOP fallback (decode cache pathology) ---------------------

std::vector<Image> FlatFrames(int n, int w, int h) {
  std::vector<Image> frames;
  frames.reserve(n);
  for (int f = 0; f < n; ++f) {
    Image img(w, h, 3);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        img.At(x, y, 0) = static_cast<uint8_t>((x + f * 3) & 0xff);
        img.At(x, y, 1) = static_cast<uint8_t>((y * 2) & 0xff);
        img.At(x, y, 2) = 60;
      }
    }
    frames.push_back(std::move(img));
  }
  return frames;
}

void WriteEncoded(const std::string& path, const std::vector<Image>& frames,
                  int gop) {
  VideoStoreOptions options;
  options.format = VideoFormat::kEncoded;
  options.gop_size = gop;
  auto writer = CreateVideoWriter(path, options);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  for (const Image& f : frames) ASSERT_TRUE((*writer)->AddFrame(f).ok());
  ASSERT_TRUE((*writer)->Finish().ok());
}

TEST_F(PersistenceTest, OversizedGopServedByFallbackSlotNotRedecode) {
  // 8-frame GOPs of 64x48 RGB decode to ~74 KB — far over a 32 KB cache,
  // so every Put is rejected. Without the fallback slot every warm read
  // re-decodes from frame 0 (slower than no cache at all).
  const std::vector<Image> frames = FlatFrames(24, 64, 48);
  WriteEncoded(Path("v"), frames, /*gop=*/8);
  SegmentCache cache(32 << 10, 1);
  auto reader = OpenVideo(Path("v"), &cache);
  auto plain = OpenVideo(Path("v"));
  ASSERT_TRUE(reader.ok() && plain.ok());

  auto a = (*reader)->ReadFrame(20);  // GOP 2: decodes frames 0..23
  ASSERT_TRUE(a.ok());
  const uint64_t after_first = (*reader)->frames_decoded();
  EXPECT_EQ(after_first, 24u);
  EXPECT_GT(cache.Stats().rejected, 0u);

  // Repeated reads within the same GOP are served by the reader's
  // fallback slot: zero additional decodes.
  for (int f : {20, 21, 16, 23, 20}) {
    auto img = (*reader)->ReadFrame(f);
    auto ref = (*plain)->ReadFrame(f);
    ASSERT_TRUE(img.ok() && ref.ok());
    EXPECT_EQ(img->bytes(), ref->bytes()) << "frame " << f;
  }
  EXPECT_EQ((*reader)->frames_decoded(), after_first);

  // Moving to another GOP re-decodes once, then that GOP is the new
  // fallback.
  ASSERT_TRUE((*reader)->ReadFrame(3).ok());
  const uint64_t after_switch = (*reader)->frames_decoded();
  EXPECT_EQ(after_switch, after_first + 8);
  ASSERT_TRUE((*reader)->ReadFrame(5).ok());
  EXPECT_EQ((*reader)->frames_decoded(), after_switch);

  // Regression: a range read whose hi GOP is served from the fallback
  // slot while earlier GOPs are cold (forcing a prefix decode) must not
  // un-pin the fallback — the decode loop once mistook the
  // fallback-served GOP for cache-resident and dropped the private copy,
  // reintroducing the full re-decode on the next read.
  ASSERT_TRUE((*reader)->ReadFrame(12).ok());  // decode 0..15, pin GOP 1
  const uint64_t after_pin = (*reader)->frames_decoded();
  EXPECT_EQ(after_pin, after_switch + 16);
  int visited = 0;
  ASSERT_TRUE((*reader)
                  ->ReadRange(4, 15,
                              [&](int, const Image&) {
                                ++visited;
                                return true;
                              })
                  .ok());
  EXPECT_EQ(visited, 12);
  const uint64_t after_range = (*reader)->frames_decoded();
  EXPECT_EQ(after_range, after_pin + 16);  // GOP 0 was cold again
  ASSERT_TRUE((*reader)->ReadFrame(13).ok());  // GOP 1 must still be pinned
  EXPECT_EQ((*reader)->frames_decoded(), after_range);
}

TEST_F(PersistenceTest, ReadingNormalGopsKeepsOversizedGopPinned) {
  // 20 frames with gop 16: GOP 0 decodes to ~37 KB (rejected by a 16 KB
  // shard), the 4-frame tail GOP to ~10 KB (admitted). Alternating reads
  // between them must not drop the oversized GOP's private pin — that
  // would re-decode the whole prefix on every other read.
  const std::vector<Image> frames = FlatFrames(20, 32, 24);
  WriteEncoded(Path("v"), frames, /*gop=*/16);
  SegmentCache cache(16 << 10, 1);
  auto reader = OpenVideo(Path("v"), &cache);
  ASSERT_TRUE(reader.ok());

  ASSERT_TRUE((*reader)->ReadFrame(2).ok());  // decode GOP 0, pin it
  const uint64_t base = (*reader)->frames_decoded();
  EXPECT_EQ(base, 16u);
  EXPECT_GT(cache.Stats().rejected, 0u);

  ASSERT_TRUE((*reader)->ReadFrame(18).ok());  // decode 0..19, tail cached
  const uint64_t after_tail = (*reader)->frames_decoded();
  EXPECT_EQ(after_tail, base + 20);

  // Tail GOP is resident; reading it must not evict GOP 0's pin.
  ASSERT_TRUE((*reader)->ReadFrame(17).ok());
  ASSERT_TRUE((*reader)->ReadFrame(3).ok());  // served by the pin
  ASSERT_TRUE((*reader)->ReadFrame(19).ok());
  ASSERT_TRUE((*reader)->ReadFrame(1).ok());
  EXPECT_EQ((*reader)->frames_decoded(), after_tail);
}

TEST_F(PersistenceTest, RepeatedRangeReadOverOversizedGopIsLookupBound) {
  // A repeated range read spanning one oversized GOP (rejected by the
  // cache) and one admitted GOP: the pin must land on the *missing* GOP,
  // not blindly on the range's hi GOP, or every warm repetition would
  // re-decode the whole prefix.
  const std::vector<Image> frames = FlatFrames(20, 32, 24);
  WriteEncoded(Path("v"), frames, /*gop=*/16);
  SegmentCache cache(16 << 10, 1);
  auto reader = OpenVideo(Path("v"), &cache);
  ASSERT_TRUE(reader.ok());

  auto read_all = [&]() {
    int n = 0;
    ASSERT_TRUE((*reader)
                    ->ReadRange(0, 19,
                                [&](int, const Image&) {
                                  ++n;
                                  return true;
                                })
                    .ok());
    EXPECT_EQ(n, 20);
  };
  read_all();
  const uint64_t cold = (*reader)->frames_decoded();
  EXPECT_EQ(cold, 20u);
  EXPECT_GT(cache.Stats().rejected, 0u);  // the 16-frame GOP was refused
  read_all();
  read_all();
  EXPECT_EQ((*reader)->frames_decoded(), cold);
}

TEST_F(PersistenceTest, ResidentGopsAreNotReinsertedDuringPrefixDecode) {
  const std::vector<Image> frames = FlatFrames(24, 32, 24);
  WriteEncoded(Path("v"), frames, /*gop=*/8);
  SegmentCache cache(8 << 20, 1);
  auto reader = OpenVideo(Path("v"), &cache);
  ASSERT_TRUE(reader.ok());

  ASSERT_TRUE((*reader)->ReadFrame(3).ok());  // decodes + inserts GOP 0
  EXPECT_EQ(cache.Stats().insertions, 1u);
  // Reading GOP 2 decodes the prefix again but must not re-insert the
  // already-resident GOP 0.
  ASSERT_TRUE((*reader)->ReadFrame(20).ok());
  EXPECT_EQ(cache.Stats().insertions, 3u);  // +GOP 1, +GOP 2 only
}

// --- Admission through the persistent tiers ------------------------------

TEST_F(PersistenceTest, AdmissionDeniedEntriesSpillAndMissesConsultDisk) {
  // TinyLFU + a hot resident working set: a one-shot cold Put must be
  // denied residency, yet the value is an expensive materialized view —
  // it must land on disk, and the next memory miss on it must be served
  // from the log (ISSUE 5: "an admission-denied miss must still consult
  // the disk log").
  auto cache = OpenCache(Path("cache"), 4 << 10, 1);
  ASSERT_TRUE(cache.ok());
  const int kHot = 20;
  for (int i = 0; i < kHot; ++i) {
    (*cache)->Put(InferenceCache::KeyFor("hot", i),
                  InferenceValue{std::string("hot-") + std::to_string(i)});
  }
  for (int pass = 0; pass < 4; ++pass) {
    for (int i = 0; i < kHot; ++i) {
      ASSERT_NE((*cache)->Get(InferenceCache::KeyFor("hot", i)), nullptr);
    }
  }
  // Cold one-shot inserts while the shard is full of hot entries.
  const int kCold = 40;
  for (int i = 0; i < kCold; ++i) {
    (*cache)->Put(InferenceCache::KeyFor("cold", i),
                  InferenceValue{std::string("cold-") + std::to_string(i)});
  }
  CacheStats stats = (*cache)->Stats();
  EXPECT_GT(stats.admission_denied, 0u);
  EXPECT_GT(stats.spilled, 0u);
  // The hot set survived the cold storm...
  for (int i = 0; i < kHot; ++i) {
    auto hit = (*cache)->Get(InferenceCache::KeyFor("hot", i));
    ASSERT_NE(hit, nullptr) << "hot key " << i << " was flushed";
    EXPECT_EQ(std::get<std::string>(hit->payload),
              "hot-" + std::to_string(i));
  }
  // ...and every denied cold entry is still served, from the spill log.
  const uint64_t disk_hits_before = stats.disk_hits;
  for (int i = 0; i < kCold; ++i) {
    auto hit = (*cache)->Get(InferenceCache::KeyFor("cold", i));
    ASSERT_NE(hit, nullptr) << "cold key " << i << " lost by admission";
    EXPECT_EQ(std::get<std::string>(hit->payload),
              "cold-" + std::to_string(i));
  }
  EXPECT_GT((*cache)->Stats().disk_hits, disk_hits_before);
}

TEST_F(PersistenceTest, ResidentKeyFilterSkipsStoreForAbsentKeys) {
  const std::string cache_dir = Path("cache");
  {
    auto cache = OpenCache(cache_dir, 1 << 20, 2);
    ASSERT_TRUE(cache.ok());
    for (int i = 0; i < 16; ++i) {
      (*cache)->Put(InferenceCache::KeyFor("m", i),
                    InferenceValue{std::string("v") + std::to_string(i)});
    }
  }
  // Reopen over a non-empty log. Keys the filter knows are absent must
  // resolve as misses without a spill-log probe: the lookups count as
  // filter_skips, never as disk_misses.
  auto cache = OpenCache(cache_dir, 1 << 20, 2);
  ASSERT_TRUE(cache.ok());
  ASSERT_GT((*cache)->Stats().disk_entries, 0u);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ((*cache)->Get(InferenceCache::KeyFor("absent", i)), nullptr);
  }
  CacheStats stats = (*cache)->Stats();
  EXPECT_EQ(stats.disk_misses, 0u);
  // Bloom false positives may eat a few skips, but the overwhelming
  // majority of absent probes must shortcut past the store mutex.
  EXPECT_GE(stats.filter_skips, 250u);
  // No false negatives: every key the log holds is still reachable.
  for (int i = 0; i < 16; ++i) {
    ASSERT_NE((*cache)->Get(InferenceCache::KeyFor("m", i)), nullptr);
  }
}

// --- Spill-log compaction ------------------------------------------------

TEST_F(PersistenceTest, CompactRewritesLogToLiveRecordsOnly) {
  const std::string cache_dir = Path("cache");
  auto cache = OpenCache(cache_dir, 1 << 20, 1);
  ASSERT_TRUE(cache.ok());
  // Build up dead versions: overwrite every key several times with
  // different bytes and force each version to disk.
  for (int version = 0; version < 6; ++version) {
    for (int i = 0; i < 24; ++i) {
      (*cache)->Put(InferenceCache::KeyFor("m", i),
                    InferenceValue{std::string(200, 'a' + (version % 26)) +
                                   std::to_string(i)});
    }
    ASSERT_TRUE((*cache)->Persist().ok());
  }
  CacheStats before = (*cache)->Stats();
  ASSERT_GT(before.disk_bytes, before.disk_live_bytes)
      << "overwrites produced no dead versions";
  ASSERT_TRUE((*cache)->Compact().ok());
  CacheStats after = (*cache)->Stats();
  EXPECT_LT(after.disk_bytes, before.disk_bytes);
  EXPECT_EQ(after.disk_bytes, after.disk_live_bytes);
  EXPECT_EQ(after.disk_entries, before.disk_entries);
  // The store stays open and serves every key with its newest value.
  for (int i = 0; i < 24; ++i) {
    auto hit = (*cache)->Get(InferenceCache::KeyFor("m", i));
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(std::get<std::string>(hit->payload),
              std::string(200, 'a' + (5 % 26)) + std::to_string(i));
  }
}

TEST_F(PersistenceTest, ChurnAndReopenCyclesStayWithinTwiceLiveBytes) {
  // The ISSUE-5 acceptance bound: ten overwrite/reopen cycles must not
  // let the append-only log outgrow 2x its live payload — Open()'s
  // auto-compaction has to keep folding dead versions away.
  const std::string cache_dir = Path("cache");
  for (int cycle = 0; cycle < 10; ++cycle) {
    auto cache = OpenCache(cache_dir, 1 << 20, 2);
    ASSERT_TRUE(cache.ok()) << cache.status().ToString();
    for (int i = 0; i < 32; ++i) {
      // Different bytes every cycle, so each cycle's spill really
      // appends a divergent version of all 32 keys.
      (*cache)->Put(
          InferenceCache::KeyFor("m", i),
          InferenceValue{std::string(300, 'a' + (cycle % 26)) +
                         std::to_string(i)});
    }
    cache->reset();  // spills + flushes
    const uint64_t log_size = std::filesystem::file_size(
        cache_dir + "/" + PersistentInferenceCache::kLogFileName);
    // Reopen to read live-byte accounting (and trigger compaction).
    auto reopened = OpenCache(cache_dir, 1 << 20, 2);
    ASSERT_TRUE(reopened.ok());
    const CacheStats stats = (*reopened)->Stats();
    EXPECT_LE(stats.disk_bytes,
              2 * stats.disk_live_bytes +
                  PersistentInferenceCache::kCompactMinDeadBytes)
        << "cycle " << cycle << ": pre-compaction log was " << log_size;
    // Values always resolve to the cycle's newest version.
    auto hit = (*reopened)->Get(InferenceCache::KeyFor("m", 7));
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(std::get<std::string>(hit->payload),
              std::string(300, 'a' + (cycle % 26)) + "7");
  }
}

TEST_F(PersistenceTest, ReopenedCacheIsByteIdenticalAfterCompaction) {
  const std::string cache_dir = Path("cache");
  std::vector<std::vector<uint8_t>> expected;
  {
    auto cache = OpenCache(cache_dir, 1 << 20, 1);
    ASSERT_TRUE(cache.ok());
    for (int version = 0; version < 4; ++version) {
      for (int i = 0; i < 16; ++i) {
        Tensor t({4}, {static_cast<float>(version), static_cast<float>(i),
                       1.5f, -2.25f});
        (*cache)->Put(InferenceCache::KeyFor("m", i), InferenceValue{t});
      }
      ASSERT_TRUE((*cache)->Persist().ok());
    }
    for (int i = 0; i < 16; ++i) {
      auto hit = (*cache)->Get(InferenceCache::KeyFor("m", i));
      ASSERT_NE(hit, nullptr);
      ByteBuffer buf;
      hit->SerializeInto(&buf);
      expected.push_back(buf.data());
    }
    ASSERT_TRUE((*cache)->Compact().ok());
  }
  auto cache = OpenCache(cache_dir, 1 << 20, 1);
  ASSERT_TRUE(cache.ok());
  for (int i = 0; i < 16; ++i) {
    auto hit = (*cache)->Get(InferenceCache::KeyFor("m", i));
    ASSERT_NE(hit, nullptr) << "key " << i << " lost by compaction";
    ByteBuffer buf;
    hit->SerializeInto(&buf);
    EXPECT_EQ(buf.data(), expected[static_cast<size_t>(i)]) << "key " << i;
  }
}

TEST_F(PersistenceTest, CrashMidCompactionLeavesReadableLog) {
  const std::string cache_dir = Path("cache");
  {
    auto cache = OpenCache(cache_dir, 1 << 20, 1);
    ASSERT_TRUE(cache.ok());
    for (int i = 0; i < 12; ++i) {
      (*cache)->Put(InferenceCache::KeyFor("m", i),
                    InferenceValue{std::string("v") + std::to_string(i)});
    }
  }
  // Simulate a compaction that died before its rename: a partial temp
  // log (torn garbage) sitting next to the intact original. The rename
  // protocol means the original is still the authoritative log; Open
  // must discard the temp and serve everything.
  const std::string log_path =
      cache_dir + "/" + PersistentInferenceCache::kLogFileName;
  const std::string tmp_path = log_path + RecordStore::kCompactSuffix;
  {
    std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char garbage[] = "half-written compaction victim";
    std::fwrite(garbage, 1, sizeof(garbage), f);
    std::fclose(f);
  }
  auto cache = OpenCache(cache_dir, 1 << 20, 1);
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();
  EXPECT_FALSE(std::filesystem::exists(tmp_path));
  for (int i = 0; i < 12; ++i) {
    auto hit = (*cache)->Get(InferenceCache::KeyFor("m", i));
    ASSERT_NE(hit, nullptr) << "key " << i;
    EXPECT_EQ(std::get<std::string>(hit->payload),
              "v" + std::to_string(i));
  }
}

// --- Contention (runs under ThreadSanitizer in CI) -----------------------

TEST_F(PersistenceTest, ConcurrentSpillPromoteStaysConsistent) {
  // Small budget so evictions (spill path) and disk promotes interleave
  // with memory hits across threads.
  auto cache = OpenCache(Path("cache"), 8 << 10, 4);
  ASSERT_TRUE(cache.ok());
  const int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      Rng rng(static_cast<uint64_t>(t) * 31 + 7);
      for (int i = 0; i < 1500; ++i) {
        const uint64_t fp = rng.NextU64Below(96);
        const std::string key = InferenceCache::KeyFor("m", fp);
        if (auto hit = (*cache)->Get(key)) {
          // Any hit — memory or promoted from the spill log — must carry
          // the payload its key implies.
          EXPECT_EQ(std::get<std::string>(hit->payload),
                    std::to_string(fp));
        } else {
          (*cache)->Put(key, InferenceValue{std::to_string(fp)});
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const CacheStats stats = (*cache)->Stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.spilled, 0u);

  // After a reopen, whatever persisted still round-trips correctly.
  cache->reset();
  auto reopened = OpenCache(Path("cache"), 1 << 20, 4);
  ASSERT_TRUE(reopened.ok());
  for (uint64_t fp = 0; fp < 96; ++fp) {
    auto hit = (*reopened)->Get(InferenceCache::KeyFor("m", fp));
    if (hit != nullptr) {
      EXPECT_EQ(std::get<std::string>(hit->payload), std::to_string(fp));
    }
  }
}

}  // namespace
}  // namespace deeplens
