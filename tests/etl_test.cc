// Unit tests for etl/: patch generators (metadata, lineage, batching),
// transformers (featurization properties, resize, OCR/depth annotation),
// and materialized views (round-trip, reopen).
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "etl/generators.h"
#include "etl/materialize.h"
#include "etl/transformers.h"
#include "sim/datasets.h"
#include "tensor/ops.h"

namespace deeplens {
namespace {

std::vector<Image> TrafficFrames(int n) {
  sim::TrafficCamConfig config;
  config.num_frames = n;
  sim::TrafficCamSim traffic(config);
  std::vector<Image> frames;
  for (int f = 0; f < n; ++f) frames.push_back(traffic.FrameAt(f));
  return frames;
}

TEST(FrameIteratorTest, VectorSourceNumbersFrames) {
  auto frames = FramesFromVector(TrafficFrames(3), 10);
  for (int expected = 10; expected < 13; ++expected) {
    auto f = frames();
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f->has_value());
    EXPECT_EQ((*f)->first, expected);
  }
  auto end = frames();
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(end->has_value());
}

TEST(WholeImageGeneratorTest, OnePatchPerFrameWithMeta) {
  EtlOptions options;
  options.dataset_name = "ds";
  auto gen =
      MakeWholeImageGenerator(FramesFromVector(TrafficFrames(4)), options);
  auto patches = CollectPatches(gen.get());
  ASSERT_TRUE(patches.ok());
  ASSERT_EQ(patches->size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    const Patch& p = (*patches)[i];
    EXPECT_NE(p.id(), kInvalidPatchId);
    EXPECT_TRUE(p.has_pixels());
    EXPECT_EQ(p.meta().Get(meta_keys::kFrameNo).AsInt().value(),
              static_cast<int64_t>(i));
    EXPECT_EQ(*p.meta().Get(meta_keys::kDataset).AsString().value(), "ds");
    EXPECT_EQ(p.ref().dataset, "ds");
    EXPECT_EQ(p.bbox().Width(), p.pixels().width());
  }
}

TEST(WholeImageGeneratorTest, IdsAreUniqueAcrossGenerators) {
  std::atomic<uint64_t> counter{1};
  EtlOptions options;
  options.id_counter = &counter;
  auto g1 =
      MakeWholeImageGenerator(FramesFromVector(TrafficFrames(3)), options);
  auto g2 =
      MakeWholeImageGenerator(FramesFromVector(TrafficFrames(3)), options);
  auto p1 = CollectPatches(g1.get());
  auto p2 = CollectPatches(g2.get());
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  std::set<PatchId> ids;
  for (const Patch& p : *p1) ids.insert(p.id());
  for (const Patch& p : *p2) ids.insert(p.id());
  EXPECT_EQ(ids.size(), 6u);
}

TEST(ObjectDetectorGeneratorTest, MatchesDirectDetection) {
  nn::TinySsdDetector detector;
  auto frames = TrafficFrames(6);
  EtlOptions options;
  options.dataset_name = "traffic";
  options.batch_size = 4;  // forces a partial second batch
  auto gen = MakeObjectDetectorGenerator(FramesFromVector(frames),
                                         &detector, options);
  auto patches = CollectPatches(gen.get());
  ASSERT_TRUE(patches.ok());

  size_t direct_count = 0;
  nn::Device* device = nn::GetDevice(nn::DeviceKind::kCpuVector);
  for (const Image& frame : frames) {
    auto dets = detector.Detect(frame, device);
    ASSERT_TRUE(dets.ok());
    direct_count += dets->size();
  }
  EXPECT_EQ(patches->size(), direct_count);
  for (const Patch& p : *patches) {
    EXPECT_TRUE(p.has_pixels());
    EXPECT_FALSE(p.meta().Get(meta_keys::kLabel).is_null());
    EXPECT_GT(p.meta().Get(meta_keys::kScore).AsNumeric().value(), 0.0);
    // Box metadata mirrors the bbox.
    EXPECT_EQ(p.meta().Get(meta_keys::kBoxX0).AsInt().value(),
              p.bbox().x0);
  }
}

TEST(ObjectDetectorGeneratorTest, CropPixelsCanBeDisabled) {
  nn::TinySsdDetector detector;
  EtlOptions options;
  options.crop_pixels = false;
  auto gen = MakeObjectDetectorGenerator(FramesFromVector(TrafficFrames(3)),
                                         &detector, options);
  auto patches = CollectPatches(gen.get());
  ASSERT_TRUE(patches.ok());
  ASSERT_FALSE(patches->empty());
  for (const Patch& p : *patches) EXPECT_FALSE(p.has_pixels());
}

TEST(GeneratorLineageTest, GeneratorsRecordLineage) {
  LineageStore lineage;
  std::atomic<uint64_t> counter{1};
  nn::TinySsdDetector detector;
  EtlOptions options;
  options.dataset_name = "traffic";
  options.lineage = &lineage;
  options.id_counter = &counter;
  auto gen = MakeObjectDetectorGenerator(FramesFromVector(TrafficFrames(4)),
                                         &detector, options);
  auto patches = CollectPatches(gen.get());
  ASSERT_TRUE(patches.ok());
  ASSERT_FALSE(patches->empty());
  EXPECT_EQ(lineage.size(), patches->size());
  for (const Patch& p : *patches) {
    auto root = lineage.Backtrace(p.id());
    ASSERT_TRUE(root.ok());
    EXPECT_EQ(root->dataset, "traffic");
  }
  // Frame index finds the patches of frame 0.
  std::vector<PatchId> frame0;
  lineage.PatchesForFrame("traffic", 0, &frame0);
  size_t expected = 0;
  for (const Patch& p : *patches) {
    if (p.ref().frameno == 0) ++expected;
  }
  EXPECT_EQ(frame0.size(), expected);
}

TEST(TileGeneratorTest, CoversFrameExactly) {
  EtlOptions options;
  Image frame(30, 20, 3);
  auto gen = MakeTileGenerator(FramesFromVector({frame}), 16, 16, options);
  auto tiles = CollectPatches(gen.get());
  ASSERT_TRUE(tiles.ok());
  ASSERT_EQ(tiles->size(), 4u);  // 2x2 grid with ragged edges
  int covered = 0;
  for (const Patch& p : *tiles) covered += p.bbox().Area();
  EXPECT_EQ(covered, 30 * 20);
}

TEST(OcrGeneratorTest, FindsEmbeddedText) {
  sim::PcConfig config;
  config.num_images = 12;
  config.num_text_images = 12;
  config.num_duplicates = 0;
  sim::PcSim pc(config);
  std::vector<Image> images;
  for (int i = 0; i < pc.num_images(); ++i) images.push_back(pc.ImageAt(i));

  nn::TinySsdDetector detector;
  nn::TinyOcr ocr;
  EtlOptions options;
  options.dataset_name = "pc";
  auto gen = MakeOcrGenerator(FramesFromVector(std::move(images)),
                              &detector, &ocr, options);
  auto patches = CollectPatches(gen.get());
  ASSERT_TRUE(patches.ok());
  // Most of the 12 embedded strings should be recognized verbatim.
  int correct = 0;
  for (const Patch& p : *patches) {
    const int64_t image =
        p.meta().Get(meta_keys::kFrameNo).AsInt().ValueOr(-1);
    auto text = p.meta().Get(meta_keys::kText).AsString();
    if (text.ok() && **text == pc.TextAt(static_cast<int>(image))) {
      ++correct;
    }
  }
  EXPECT_GE(correct, 8);
}

TEST(SchemaDeclarationsTest, DetectorSchemaHasClosedLabelDomain) {
  PatchSchema schema = DetectorSchema();
  const AttributeSpec* label = schema.FindAttribute(meta_keys::kLabel);
  ASSERT_NE(label, nullptr);
  EXPECT_EQ(label->domain.size(), static_cast<size_t>(nn::kNumClasses));
  EXPECT_TRUE(label->domain.count("car"));
  EXPECT_TRUE(
      schema.ValidatePredicate(meta_keys::kLabel, MetaValue("unicorn"))
          .IsTypeError());
  EXPECT_TRUE(OcrSchema().HasAttribute(meta_keys::kText));
  EXPECT_TRUE(WholeImageSchema().HasAttribute(meta_keys::kFrameNo));
}

// --- Transformers ------------------------------------------------------

TEST(ColorHistogramTest, FeatureIsL1NormalizedPerChannel) {
  Image img(10, 10, 3);
  for (auto& b : img.bytes()) b = 100;
  ColorHistogramOptions options;
  options.bins = 8;
  options.grid = 1;
  Tensor f = ColorHistogramFeature(img, options);
  ASSERT_EQ(f.size(), options.FeatureDim());
  // Each channel's histogram sums to ~1.
  for (int c = 0; c < 3; ++c) {
    float sum = 0;
    for (int b = 0; b < 8; ++b) sum += f[c * 8 + b];
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
  }
}

TEST(ColorHistogramTest, SizeInvariance) {
  // The same solid color at different patch sizes → identical features.
  Image small(6, 6, 3), large(40, 30, 3);
  for (auto& b : small.bytes()) b = 150;
  for (auto& b : large.bytes()) b = 150;
  ColorHistogramOptions options;
  Tensor fs = ColorHistogramFeature(small, options);
  Tensor fl = ColorHistogramFeature(large, options);
  EXPECT_LT(ops::L2Distance(fs, fl), 1e-4f);
}

TEST(ColorHistogramTest, SoftBinningIsLipschitzInColor) {
  // A one-step color change must move the feature by a bounded amount —
  // the property hard binning violates at bin boundaries.
  ColorHistogramOptions options;
  options.bins = 16;
  Image a(8, 8, 3), b(8, 8, 3);
  for (auto& v : a.bytes()) v = 119;  // straddles the 16-wide bin edge
  for (auto& v : b.bytes()) v = 120;
  Tensor fa = ColorHistogramFeature(a, options);
  Tensor fb = ColorHistogramFeature(b, options);
  EXPECT_LT(ops::L2Distance(fa, fb), 0.25f);
}

TEST(ColorHistogramTest, GridAppendsSpatialMeans) {
  ColorHistogramOptions options;
  options.bins = 4;
  options.grid = 2;
  EXPECT_EQ(options.FeatureDim(), 3 * 4 + 3 * 4);
  // Left half dark, right half bright: grid cells must differ.
  Image img(8, 8, 3);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      for (int c = 0; c < 3; ++c) img.At(x, y, c) = x < 4 ? 20 : 220;
    }
  }
  Tensor f = ColorHistogramFeature(img, options);
  const float* cells = f.data() + 12;
  EXPECT_LT(cells[0], 0.2f);   // top-left mean (dark)
  EXPECT_GT(cells[3 + 0], 0.7f);  // top-right mean (bright)
}

TEST(ColorHistogramTransformerTest, SetsFeaturesOnPatches) {
  EtlOptions options;
  auto gen =
      MakeWholeImageGenerator(FramesFromVector(TrafficFrames(2)), options);
  auto transformer =
      MakeColorHistogramTransformer(std::move(gen), ColorHistogramOptions{});
  auto patches = CollectPatches(transformer.get());
  ASSERT_TRUE(patches.ok());
  for (const Patch& p : *patches) {
    EXPECT_TRUE(p.has_features());
  }
}

TEST(ColorHistogramTransformerTest, FailsWithoutPixels) {
  Patch p;
  p.set_id(1);
  auto transformer = MakeColorHistogramTransformer(
      MakeVectorSource({p}), ColorHistogramOptions{});
  EXPECT_TRUE(CollectPatches(transformer.get())
                  .status()
                  .IsInvalidArgument());
}

TEST(ResizeTransformerTest, NormalizesResolution) {
  EtlOptions options;
  auto gen =
      MakeWholeImageGenerator(FramesFromVector(TrafficFrames(2)), options);
  auto resize = MakeResizeTransformer(std::move(gen), 32, 32);
  auto patches = CollectPatches(resize.get());
  ASSERT_TRUE(patches.ok());
  for (const Patch& p : *patches) {
    EXPECT_EQ(p.pixels().width(), 32);
    EXPECT_EQ(p.pixels().height(), 32);
  }
}

TEST(DepthTransformerTest, AnnotatesDepthMeta) {
  sim::TrafficCamConfig config;
  config.num_frames = 30;
  sim::TrafficCamSim traffic(config);
  // Build patches from ground-truth pedestrian crops.
  PatchCollection persons;
  PatchId next = 1;
  for (int f = 0; f < 30; ++f) {
    Image frame = traffic.FrameAt(f);
    for (const auto& o : traffic.TruthAt(f).objects) {
      if (o.cls != nn::ObjectClass::kPerson) continue;
      Patch p;
      p.set_id(next++);
      p.set_bbox(o.bbox);
      p.set_pixels(frame.Crop(o.bbox.x0, o.bbox.y0, o.bbox.x1, o.bbox.y1));
      p.mutable_meta().Set("truth_depth", static_cast<double>(o.depth));
      persons.push_back(std::move(p));
    }
  }
  ASSERT_FALSE(persons.empty());
  nn::TinyDepth model(nn::kFocalTimesHeight);
  auto transformer = MakeDepthTransformer(MakeVectorSource(persons), &model,
                                          config.height);
  auto annotated = CollectPatches(transformer.get());
  ASSERT_TRUE(annotated.ok());
  for (const Patch& p : *annotated) {
    const double predicted =
        p.meta().Get(meta_keys::kDepth).AsNumeric().value();
    const double truth =
        p.meta().Get("truth_depth").AsNumeric().value();
    EXPECT_NEAR(predicted, truth, truth * 0.25) << "patch " << p.id();
  }
}

TEST(OcrTransformerTest, AnnotatesLegibleText) {
  // A patch whose pixels carry a digit panel gets a "text" key.
  Image panel(40, 24, 3);
  for (auto& b : panel.bytes()) b = 25;
  sim::DrawDigits(&panel, nn::BBox{2, 2, 38, 22}, "37");
  Patch p;
  p.set_id(1);
  p.set_pixels(panel);
  nn::TinyOcr ocr;
  auto transformer = MakeOcrTransformer(MakeVectorSource({p}), &ocr);
  auto out = CollectPatches(transformer.get());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(*(*out)[0].meta().Get(meta_keys::kText).AsString().value(),
            "37");
}

// --- Materialized views --------------------------------------------------

class MaterializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("dl_etl_mat_" + std::to_string(::getpid())))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

TEST_F(MaterializeTest, WriteThenLoadRoundTrip) {
  EtlOptions options;
  options.dataset_name = "ds";
  auto gen =
      MakeWholeImageGenerator(FramesFromVector(TrafficFrames(5)), options);
  auto featurized =
      MakeColorHistogramTransformer(std::move(gen), ColorHistogramOptions{});
  auto view = MaterializedView::Open(path_);
  ASSERT_TRUE(view.ok());
  auto written = (*view)->Write(featurized.get());
  ASSERT_TRUE(written.ok());
  EXPECT_EQ(*written, 5u);
  EXPECT_EQ((*view)->size(), 5u);
  EXPECT_GT((*view)->storage_bytes(), 0u);

  auto loaded = (*view)->LoadAll();
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 5u);
  for (const Patch& p : *loaded) {
    EXPECT_TRUE(p.has_pixels());
    EXPECT_TRUE(p.has_features());
    EXPECT_EQ(*p.meta().Get(meta_keys::kDataset).AsString().value(), "ds");
  }
}

TEST_F(MaterializeTest, SurvivesReopen) {
  {
    auto view = MaterializedView::Open(path_);
    ASSERT_TRUE(view.ok());
    Patch p;
    p.set_id(42);
    p.mutable_meta().Set("k", "v");
    ASSERT_TRUE((*view)->Append(p).ok());
    ASSERT_TRUE((*view)->Flush().ok());
  }
  auto view = MaterializedView::Open(path_);
  ASSERT_TRUE(view.ok());
  auto loaded = (*view)->LoadAll();
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].id(), 42u);
}

TEST_F(MaterializeTest, ScanStreamsAllPatches) {
  auto view = MaterializedView::Open(path_);
  ASSERT_TRUE(view.ok());
  for (PatchId id = 1; id <= 7; ++id) {
    Patch p;
    p.set_id(id);
    ASSERT_TRUE((*view)->Append(p).ok());
  }
  auto scan = (*view)->Scan();
  EXPECT_EQ(Drain(scan.get()).value(), 7u);
}

TEST_F(MaterializeTest, ScanSnapshotsAtCallTimeAndOutlivesView) {
  auto view = MaterializedView::Open(path_);
  ASSERT_TRUE(view.ok());
  for (PatchId id = 1; id <= 3; ++id) {
    Patch p;
    p.set_id(id);
    ASSERT_TRUE((*view)->Append(p).ok());
  }
  auto scan = (*view)->Scan();
  // Writes after Scan() must not leak into the snapshot, and the iterator
  // must stay valid after the view is destroyed.
  Patch late;
  late.set_id(4);
  ASSERT_TRUE((*view)->Append(late).ok());
  view->reset();
  EXPECT_EQ(Drain(scan.get()).value(), 3u);
}

}  // namespace
}  // namespace deeplens
