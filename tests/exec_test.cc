// Unit tests for exec/: expression evaluation & validation, streaming
// operators, all join strategies (equivalence against nested-loop), and
// aggregation/dedup operators.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "exec/aggregates.h"
#include "exec/expression_patterns.h"
#include "exec/joins.h"
#include "exec/operators.h"

namespace deeplens {
namespace {

Patch MakePatch(PatchId id, int frameno, const std::string& label,
                double score = 1.0) {
  Patch p;
  p.set_id(id);
  p.set_ref(ImgRef{"ds", frameno, kInvalidPatchId});
  p.set_bbox(nn::BBox{0, 0, 10, 10});
  p.mutable_meta().Set(meta_keys::kPatchId, static_cast<int64_t>(id));
  p.mutable_meta().Set(meta_keys::kFrameNo, int64_t{frameno});
  p.mutable_meta().Set(meta_keys::kLabel, label);
  p.mutable_meta().Set(meta_keys::kScore, score);
  return p;
}

Patch WithFeature(Patch p, std::vector<float> f) {
  p.set_features(Tensor::FromVector(std::move(f)));
  return p;
}

PatchCollection SampleCollection() {
  return {MakePatch(1, 0, "car", 0.9), MakePatch(2, 0, "person", 0.8),
          MakePatch(3, 1, "car", 0.7), MakePatch(4, 2, "person", 0.4),
          MakePatch(5, 2, "car", 0.95)};
}

TEST(ExpressionTest, AttrAndLiteralComparisons) {
  PatchTuple t{MakePatch(1, 5, "car", 0.9)};
  EXPECT_TRUE(Eq(Attr("label"), Lit("car"))->EvalBool(t).value());
  EXPECT_FALSE(Eq(Attr("label"), Lit("person"))->EvalBool(t).value());
  EXPECT_TRUE(Ge(Attr("score"), Lit(0.5))->EvalBool(t).value());
  EXPECT_TRUE(Lt(Attr("frameno"), Lit(int64_t{6}))->EvalBool(t).value());
  EXPECT_TRUE(Ne(Attr("label"), Lit("dog"))->EvalBool(t).value());
}

TEST(ExpressionTest, NumericCoercionIntFloat) {
  PatchTuple t{MakePatch(1, 5, "car", 0.9)};
  // frameno is int; compare against float literal.
  EXPECT_TRUE(Le(Attr("frameno"), Lit(5.0))->EvalBool(t).value());
  EXPECT_FALSE(Lt(Attr("frameno"), Lit(5.0))->EvalBool(t).value());
}

TEST(ExpressionTest, MissingAttributeIsNullAndFalse) {
  PatchTuple t{MakePatch(1, 0, "car")};
  EXPECT_FALSE(Eq(Attr("nope"), Lit(1))->EvalBool(t).value());
}

TEST(ExpressionTest, BooleanLogicShortCircuits) {
  PatchTuple t{MakePatch(1, 0, "car")};
  auto true_expr = Eq(Attr("label"), Lit("car"));
  auto false_expr = Eq(Attr("label"), Lit("x"));
  EXPECT_TRUE(Or(true_expr, false_expr)->EvalBool(t).value());
  EXPECT_FALSE(And(true_expr, false_expr)->EvalBool(t).value());
  EXPECT_TRUE(Not(false_expr)->EvalBool(t).value());
}

TEST(ExpressionTest, Arithmetic) {
  PatchTuple t{MakePatch(1, 10, "car", 0.5)};
  auto sum = Add(Attr("frameno"), Lit(int64_t{5}))->Eval(t);
  EXPECT_EQ(sum.value().AsInt().value(), 15);
  auto mixed = MulE(Attr("score"), Lit(2.0))->Eval(t);
  EXPECT_DOUBLE_EQ(mixed.value().AsFloat().value(), 1.0);
  auto diff = Sub(Lit(int64_t{3}), Attr("frameno"))->Eval(t);
  EXPECT_EQ(diff.value().AsInt().value(), -7);
}

TEST(ExpressionTest, GeometryAccessors) {
  Patch p = MakePatch(1, 0, "car");
  p.set_bbox(nn::BBox{2, 3, 12, 23});
  PatchTuple t{p};
  EXPECT_EQ(Geom(0, "width")->Eval(t).value().AsInt().value(), 10);
  EXPECT_EQ(Geom(0, "height")->Eval(t).value().AsInt().value(), 20);
  EXPECT_EQ(Geom(0, "area")->Eval(t).value().AsInt().value(), 200);
  EXPECT_EQ(Geom(0, "cx")->Eval(t).value().AsInt().value(), 7);
  EXPECT_FALSE(Geom(0, "bogus")->Eval(t).ok());
}

TEST(ExpressionTest, MultiSlotAccess) {
  PatchTuple t{MakePatch(1, 0, "car"), MakePatch(2, 1, "person")};
  EXPECT_TRUE(
      Lt(Attr(0, "frameno"), Attr(1, "frameno"))->EvalBool(t).value());
  EXPECT_FALSE(Attr(2, "frameno")->Eval(t).ok());  // slot out of range
}

TEST(ExpressionTest, FeatureDistanceAndIou) {
  Patch a = WithFeature(MakePatch(1, 0, "car"), {0, 0});
  Patch b = WithFeature(MakePatch(2, 0, "car"), {3, 4});
  PatchTuple t{a, b};
  EXPECT_NEAR(FeatureDistance(0, 1)->Eval(t).value().AsFloat().value(),
              5.0, 1e-4);
  EXPECT_NEAR(BoxIou(0, 1)->Eval(t).value().AsFloat().value(), 1.0, 1e-5);
  PatchTuple no_features{MakePatch(1, 0, "car"), MakePatch(2, 0, "car")};
  EXPECT_FALSE(FeatureDistance(0, 1)->Eval(no_features).ok());
}

TEST(ExpressionTest, SchemaValidationCatchesBadPredicates) {
  PatchSchema schema;
  AttributeSpec label;
  label.name = "label";
  label.type = ValueType::kString;
  label.domain = {"car", "person"};
  schema.AddAttribute(label).AddAttribute("score", ValueType::kFloat);

  EXPECT_TRUE(Eq(Attr("label"), Lit("car"))->Validate({schema}).ok());
  // Unknown attribute.
  EXPECT_TRUE(Eq(Attr("depth"), Lit(1.0))
                  ->Validate({schema})
                  .IsTypeError());
  // Label outside the closed domain can never match (paper §4.2).
  EXPECT_TRUE(
      Eq(Attr("label"), Lit("dog"))->Validate({schema}).IsTypeError());
  // Type mismatch.
  EXPECT_TRUE(
      Eq(Attr("score"), Lit("high"))->Validate({schema}).IsTypeError());
}

TEST(ExpressionPatternTest, ConjunctsAndEqualityPatterns) {
  ExprPtr pred = And(Eq(Attr("label"), Lit("car")),
                     Ge(Attr("score"), Lit(0.5)));
  std::vector<ExprPtr> conjuncts;
  CollectConjuncts(pred, &conjuncts);
  ASSERT_EQ(conjuncts.size(), 2u);
  auto eq = MatchAttrEqLit(conjuncts[0]);
  ASSERT_TRUE(eq.has_value());
  EXPECT_EQ(eq->key, "label");
  EXPECT_EQ(*eq->value.AsString().value(), "car");
  EXPECT_FALSE(MatchAttrEqLit(conjuncts[1]).has_value());
  auto range = MatchAttrRange(conjuncts[1]);
  ASSERT_TRUE(range.has_value());
  EXPECT_TRUE(range->lo.has_value());
  EXPECT_FALSE(range->hi.has_value());
}

TEST(ExpressionPatternTest, SwappedOperandsNormalize) {
  // 5 >= frameno means frameno <= 5.
  auto range = MatchAttrRange(Ge(Lit(int64_t{5}), Attr("frameno")));
  ASSERT_TRUE(range.has_value());
  ASSERT_TRUE(range->hi.has_value());
  EXPECT_EQ(range->hi->AsInt().value(), 5);
  EXPECT_FALSE(range->lo.has_value());
}

TEST(OperatorTest, FilterKeepsMatching) {
  auto source = MakeVectorSource(SampleCollection());
  auto filter =
      MakeFilter(std::move(source), Eq(Attr("label"), Lit("car")));
  auto rows = CollectPatches(filter.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
}

TEST(OperatorTest, MapTransforms) {
  auto source = MakeVectorSource(SampleCollection());
  auto map = MakeMap(std::move(source), [](PatchTuple t) -> Result<PatchTuple> {
    t[0].mutable_meta().Set("doubled",
                            t[0].meta().Get("frameno").AsInt().value() * 2);
    return t;
  });
  auto rows = CollectPatches(map.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[4].meta().Get("doubled").AsInt().value(), 4);
}

TEST(OperatorTest, LimitStopsEarly) {
  auto source = MakeVectorSource(SampleCollection());
  auto limit = MakeLimit(std::move(source), 2);
  EXPECT_EQ(Drain(limit.get()).value(), 2u);
}

TEST(OperatorTest, UnionConcatenates) {
  std::vector<PatchIteratorPtr> children;
  children.push_back(MakeVectorSource(SampleCollection()));
  children.push_back(MakeVectorSource(SampleCollection()));
  auto u = MakeUnion(std::move(children));
  EXPECT_EQ(Drain(u.get()).value(), 10u);
}

TEST(OperatorTest, ProjectDropsPayloadAndKeys) {
  Patch p = MakePatch(1, 0, "car");
  p.set_pixels(Image(4, 4, 3));
  p.set_features(Tensor::FromVector({1, 2}));
  ProjectSpec spec;
  spec.keep_pixels = false;
  spec.keep_features = true;
  spec.keep_meta_keys = {"label"};
  auto project = MakeProject(MakeVectorSource({p}), spec);
  auto rows = CollectPatches(project.get());
  ASSERT_TRUE(rows.ok());
  const Patch& out = (*rows)[0];
  EXPECT_FALSE(out.has_pixels());
  EXPECT_TRUE(out.has_features());
  EXPECT_TRUE(out.meta().Contains("label"));
  EXPECT_FALSE(out.meta().Contains("frameno"));
}

TEST(OperatorTest, GeneratorSourceEnds) {
  int remaining = 3;
  auto gen = MakeGeneratorSource(
      [&remaining]() -> Result<std::optional<PatchTuple>> {
        if (remaining == 0) return std::optional<PatchTuple>();
        --remaining;
        return std::optional<PatchTuple>(PatchTuple{MakePatch(1, 0, "x")});
      });
  EXPECT_EQ(Drain(gen.get()).value(), 3u);
}

// --- Joins ------------------------------------------------------------------

PatchCollection FeatureCollection(int n, uint64_t seed, size_t dim = 8) {
  Rng rng(seed);
  PatchCollection out;
  for (int i = 0; i < n; ++i) {
    std::vector<float> f(dim);
    for (auto& v : f) v = static_cast<float>(rng.NextUniform(0, 1));
    out.push_back(WithFeature(
        MakePatch(static_cast<PatchId>(1000 + i), i, "obj"), std::move(f)));
  }
  return out;
}

std::set<std::pair<PatchId, PatchId>> PairIds(
    const std::vector<PatchTuple>& tuples) {
  std::set<std::pair<PatchId, PatchId>> out;
  for (const auto& t : tuples) out.emplace(t[0].id(), t[1].id());
  return out;
}

TEST(JoinTest, NestedLoopThetaJoin) {
  auto left = MakeVectorSource(SampleCollection());
  auto right = MakeVectorSource(SampleCollection());
  // Same frame, different patches.
  ExprPtr pred = And(Eq(Attr(0, "frameno"), Attr(1, "frameno")),
                     Ne(Attr(0, "pid"), Attr(1, "pid")));
  JoinStats stats;
  auto result = NestedLoopJoin(left.get(), right.get(), pred, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 4u);  // frames 0 and 2 each have 2 patches
  EXPECT_EQ(stats.pairs_examined, 25u);
}

TEST(JoinTest, HashJoinMatchesNestedLoop) {
  auto collection = SampleCollection();
  ExprPtr eq = Eq(Attr(0, "frameno"), Attr(1, "frameno"));
  auto l1 = MakeVectorSource(collection);
  auto r1 = MakeVectorSource(collection);
  auto nl = NestedLoopJoin(l1.get(), r1.get(), eq);
  ASSERT_TRUE(nl.ok());
  auto l2 = MakeVectorSource(collection);
  auto r2 = MakeVectorSource(collection);
  auto hj = HashEqualityJoin(l2.get(), r2.get(), "frameno");
  ASSERT_TRUE(hj.ok());
  EXPECT_EQ(PairIds(*nl), PairIds(*hj));
}

TEST(JoinTest, HashJoinResidualFilters) {
  auto collection = SampleCollection();
  auto l = MakeVectorSource(collection);
  auto r = MakeVectorSource(collection);
  auto result = HashEqualityJoin(l.get(), r.get(), "frameno",
                                 Ne(Attr(0, "pid"), Attr(1, "pid")));
  ASSERT_TRUE(result.ok());
  for (const auto& t : *result) EXPECT_NE(t[0].id(), t[1].id());
}

TEST(JoinTest, BallTreeJoinMatchesNestedLoopSet) {
  auto a = FeatureCollection(60, 42);
  auto b = FeatureCollection(40, 43);
  const float threshold = 0.4f;
  ExprPtr pred = Le(FeatureDistance(0, 1),
                    Lit(static_cast<double>(threshold)));
  auto l1 = MakeVectorSource(a);
  auto r1 = MakeVectorSource(b);
  auto nl = NestedLoopJoin(l1.get(), r1.get(), pred);
  ASSERT_TRUE(nl.ok());

  auto l2 = MakeVectorSource(a);
  auto r2 = MakeVectorSource(b);
  SimilarityJoinOptions options;
  options.max_distance = threshold;
  options.skip_identical_ids = false;
  JoinStats stats;
  auto bt = BallTreeSimilarityJoin(l2.get(), r2.get(), options, nullptr,
                                   &stats);
  ASSERT_TRUE(bt.ok());
  EXPECT_EQ(PairIds(*nl), PairIds(*bt));
  EXPECT_GT(stats.index_build_millis, 0.0);
}

TEST(JoinTest, BallTreeJoinIndexesSmallerSide) {
  // Output tuple order must stay (left, right) regardless of which side
  // was indexed.
  auto small = FeatureCollection(5, 1);
  auto large = FeatureCollection(50, 2);
  auto l = MakeVectorSource(large);
  auto r = MakeVectorSource(small);
  SimilarityJoinOptions options;
  options.max_distance = 10.0f;  // everything matches
  options.skip_identical_ids = false;
  auto result = BallTreeSimilarityJoin(l.get(), r.get(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 250u);
  for (const auto& t : *result) {
    EXPECT_GE(t[0].meta().Get("frameno").AsInt().value(), 0);
    // Left side came from `large`, whose ids start at 1000.
    EXPECT_GE(t[0].id(), 1000u);
  }
}

TEST(JoinTest, AllPairsMatchesBallTree) {
  auto a = FeatureCollection(30, 7);
  auto b = FeatureCollection(25, 8);
  SimilarityJoinOptions options;
  options.max_distance = 0.35f;
  options.skip_identical_ids = false;
  auto l1 = MakeVectorSource(a);
  auto r1 = MakeVectorSource(b);
  auto bt = BallTreeSimilarityJoin(l1.get(), r1.get(), options);
  ASSERT_TRUE(bt.ok());
  auto l2 = MakeVectorSource(a);
  auto r2 = MakeVectorSource(b);
  auto ap = AllPairsSimilarityJoin(
      l2.get(), r2.get(), options.max_distance,
      nn::GetDevice(nn::DeviceKind::kCpuVector));
  ASSERT_TRUE(ap.ok());
  EXPECT_EQ(PairIds(*bt), PairIds(*ap));
}

TEST(JoinTest, SimilarityJoinRequiresFeatures) {
  auto l = MakeVectorSource(SampleCollection());
  auto r = MakeVectorSource(SampleCollection());
  SimilarityJoinOptions options;
  auto result = BallTreeSimilarityJoin(l.get(), r.get(), options);
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(JoinTest, RTreeSpatialJoinMatchesBruteForce) {
  Rng rng(11);
  PatchCollection a, b;
  for (int i = 0; i < 40; ++i) {
    Patch p = MakePatch(static_cast<PatchId>(i + 1), i, "box");
    const int x = static_cast<int>(rng.NextInt(0, 80));
    const int y = static_cast<int>(rng.NextInt(0, 80));
    p.set_bbox(nn::BBox{x, y, x + static_cast<int>(rng.NextInt(2, 15)),
                        y + static_cast<int>(rng.NextInt(2, 15))});
    (i % 2 == 0 ? a : b).push_back(p);
  }
  auto l = MakeVectorSource(a);
  auto r = MakeVectorSource(b);
  auto joined = RTreeSpatialJoin(l.get(), r.get());
  ASSERT_TRUE(joined.ok());
  std::set<std::pair<PatchId, PatchId>> want;
  for (const Patch& pa : a) {
    for (const Patch& pb : b) {
      Rect ra{static_cast<float>(pa.bbox().x0),
              static_cast<float>(pa.bbox().y0),
              static_cast<float>(pa.bbox().x1),
              static_cast<float>(pa.bbox().y1)};
      Rect rb{static_cast<float>(pb.bbox().x0),
              static_cast<float>(pb.bbox().y0),
              static_cast<float>(pb.bbox().x1),
              static_cast<float>(pb.bbox().y1)};
      if (ra.Intersects(rb)) want.emplace(pa.id(), pb.id());
    }
  }
  EXPECT_EQ(PairIds(*joined), want);
}

// --- Aggregates --------------------------------------------------------------

TEST(AggregateTest, CountsAndDistinct) {
  auto s1 = MakeVectorSource(SampleCollection());
  EXPECT_EQ(CountAll(s1.get()).value(), 5u);
  auto s2 = MakeVectorSource(SampleCollection());
  EXPECT_EQ(CountDistinctKey(s2.get(), "frameno").value(), 3u);
  auto s3 = MakeVectorSource(SampleCollection());
  EXPECT_EQ(CountDistinctKey(s3.get(), "label").value(), 2u);
}

TEST(AggregateTest, GroupByCount) {
  auto s = MakeVectorSource(SampleCollection());
  auto groups = GroupByCount(s.get(), "label");
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ((*groups)["'car'"], 3u);
  EXPECT_EQ((*groups)["'person'"], 2u);
}

TEST(AggregateTest, GroupByMin) {
  auto s = MakeVectorSource(SampleCollection());
  auto mins = GroupByMin(s.get(), "label", "score");
  ASSERT_TRUE(mins.ok());
  EXPECT_DOUBLE_EQ((*mins)["'car'"], 0.7);
  EXPECT_DOUBLE_EQ((*mins)["'person'"], 0.4);
}

TEST(AggregateTest, SortByKey) {
  auto s = MakeVectorSource(
      {MakePatch(1, 9, "a"), MakePatch(2, 3, "b"), MakePatch(3, 5, "c")});
  auto sorted = SortByKey(s.get(), "frameno");
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ((*sorted)[0][0].id(), 2u);
  EXPECT_EQ((*sorted)[1][0].id(), 3u);
  EXPECT_EQ((*sorted)[2][0].id(), 1u);
}

class DedupStrategies
    : public ::testing::TestWithParam<DedupOptions::Strategy> {};

TEST_P(DedupStrategies, ClustersPlantedIdentities) {
  // Three well-separated identity centers with 10 noisy observations each.
  Rng rng(21);
  PatchCollection patches;
  PatchId next = 1;
  for (int identity = 0; identity < 3; ++identity) {
    for (int obs = 0; obs < 10; ++obs) {
      std::vector<float> f(6);
      for (size_t d = 0; d < f.size(); ++d) {
        f[d] = static_cast<float>(identity) * 5.0f +
               0.01f * static_cast<float>(rng.NextGaussian());
      }
      patches.push_back(
          WithFeature(MakePatch(next++, obs, "obj"), std::move(f)));
    }
  }
  DedupOptions options;
  options.max_distance = 1.0f;
  options.strategy = GetParam();
  auto source = MakeVectorSource(patches);
  auto result = SimilarityDedup(source.get(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 3u);
  EXPECT_EQ(result->representatives.size(), 3u);
  EXPECT_EQ(result->cluster_of.size(), 30u);
  // All observations of an identity share a cluster id.
  for (int identity = 0; identity < 3; ++identity) {
    for (int obs = 1; obs < 10; ++obs) {
      EXPECT_EQ(result->cluster_of[identity * 10],
                result->cluster_of[identity * 10 + obs]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, DedupStrategies,
                         ::testing::Values(
                             DedupOptions::Strategy::kBallTree,
                             DedupOptions::Strategy::kAllPairs));

TEST(DedupTest, EmptyInput) {
  auto source = MakeVectorSource(PatchCollection{});
  auto result = SimilarityDedup(source.get(), DedupOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_clusters, 0u);
}

TEST(DedupTest, RequiresFeatures) {
  auto source = MakeVectorSource(SampleCollection());
  EXPECT_TRUE(SimilarityDedup(source.get(), DedupOptions{})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace deeplens
