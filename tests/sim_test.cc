// Unit tests for sim/: determinism, ground-truth consistency, scene
// rendering invariants, and accuracy scoring.
#include <gtest/gtest.h>

#include <set>

#include "sim/accuracy.h"
#include "sim/datasets.h"
#include "sim/scene.h"

namespace deeplens {
namespace sim {
namespace {

TEST(SceneTest, RenderIsDeterministic) {
  SceneObject obj;
  obj.cls = nn::ObjectClass::kCar;
  obj.bbox = nn::BBox{10, 10, 30, 18};
  Image a = RenderScene(64, 48, Background::kAsphalt, {obj}, 5);
  Image b = RenderScene(64, 48, Background::kAsphalt, {obj}, 5);
  EXPECT_EQ(Image::MeanAbsDiff(a, b), 0.0);
  Image c = RenderScene(64, 48, Background::kAsphalt, {obj}, 6);
  EXPECT_GT(Image::MeanAbsDiff(a, c), 0.0);
}

TEST(SceneTest, ObjectColorDominatesInsideBox) {
  SceneObject obj;
  obj.cls = nn::ObjectClass::kCar;
  obj.bbox = nn::BBox{10, 10, 30, 20};
  Image img = RenderScene(64, 48, Background::kAsphalt, {obj}, 5);
  // Center of the car is red-dominant.
  EXPECT_GT(img.At(20, 15, 0), img.At(20, 15, 1) + 50);
  // Outside the car is gray.
  EXPECT_NEAR(img.At(5, 5, 0), img.At(5, 5, 1), 20);
}

TEST(SceneTest, IdentityJitterIsStable) {
  SceneObject a, b;
  a.cls = b.cls = nn::ObjectClass::kPerson;
  a.object_id = b.object_id = 42;
  a.color_jitter[0] = b.color_jitter[0] = 10;
  uint8_t rgb_a[3], rgb_b[3];
  ObjectColor(a, rgb_a);
  ObjectColor(b, rgb_b);
  EXPECT_EQ(rgb_a[0], rgb_b[0]);
}

TEST(SceneTest, OcclusionPaintsNearObjectsOnTop) {
  SceneObject far_obj, near_obj;
  far_obj.cls = nn::ObjectClass::kCar;  // red
  far_obj.bbox = nn::BBox{10, 10, 30, 20};
  far_obj.depth = 40.0f;
  near_obj.cls = nn::ObjectClass::kPerson;  // green
  near_obj.bbox = nn::BBox{15, 8, 22, 22};
  near_obj.depth = 10.0f;
  Image img = RenderScene(64, 48, Background::kAsphalt,
                          {near_obj, far_obj}, 5, 0);
  // Inside the overlap, the near (green) object wins.
  EXPECT_GT(img.At(18, 15, 1), img.At(18, 15, 0));
}

TEST(SceneTest, DrawDigitsRendersInk) {
  Image img(40, 20, 3);
  for (auto& b : img.bytes()) b = 25;
  DrawDigits(&img, nn::BBox{0, 0, 40, 20}, "18");
  int bright = 0;
  for (auto b : img.bytes()) {
    if (b >= nn::kGlyphBrightness) ++bright;
  }
  EXPECT_GT(bright, 30);
}

TEST(TrafficCamTest, DeterministicFramesAndTruth) {
  TrafficCamConfig config;
  config.num_frames = 50;
  TrafficCamSim a(config), b(config);
  for (int f : {0, 13, 49}) {
    EXPECT_EQ(Image::MeanAbsDiff(a.FrameAt(f), b.FrameAt(f)), 0.0);
    EXPECT_EQ(a.TruthAt(f).objects.size(), b.TruthAt(f).objects.size());
  }
}

TEST(TrafficCamTest, TruthBoxesInsideFrame) {
  TrafficCamConfig config;
  config.num_frames = 120;
  TrafficCamSim sim(config);
  for (int f = 0; f < config.num_frames; f += 7) {
    for (const SceneObject& o : sim.TruthAt(f).objects) {
      EXPECT_GE(o.bbox.x0, 0);
      EXPECT_GE(o.bbox.y0, 0);
      EXPECT_LE(o.bbox.x1, config.width);
      EXPECT_LE(o.bbox.y1, config.height);
      EXPECT_GT(o.bbox.Area(), 0);
    }
  }
}

TEST(TrafficCamTest, EmptyFramesExist) {
  TrafficCamConfig config;
  config.num_frames = 300;
  TrafficCamSim sim(config);
  const int with_cars = sim.FramesWithVehicles();
  EXPECT_GT(with_cars, 0);
  EXPECT_LT(with_cars, config.num_frames);  // red-light gaps exist
}

TEST(TrafficCamTest, PedestrianIdsAndDepths) {
  TrafficCamConfig config;
  config.num_frames = 200;
  config.num_pedestrians = 8;
  TrafficCamSim sim(config);
  EXPECT_LE(sim.DistinctPedestrians(), 8);
  EXPECT_GT(sim.DistinctPedestrians(), 0);
  std::set<int> ids;
  for (int f = 0; f < config.num_frames; ++f) {
    for (const SceneObject& o : sim.TruthAt(f).objects) {
      if (o.cls == nn::ObjectClass::kPerson) {
        EXPECT_TRUE(TrafficCamSim::IsPedestrianId(o.object_id));
        EXPECT_GT(o.depth, 0);
        ids.insert(o.object_id);
        // Rendered height follows the projective law.
        const int expected_h =
            static_cast<int>(kDepthConstant / o.depth);
        EXPECT_EQ(o.bbox.Height(), expected_h);
      } else {
        EXPECT_FALSE(TrafficCamSim::IsPedestrianId(o.object_id));
      }
    }
  }
  EXPECT_EQ(static_cast<int>(ids.size()), sim.DistinctPedestrians());
}

TEST(TrafficCamTest, BehindPairsAreConsistentWithDepths) {
  TrafficCamConfig config;
  config.num_frames = 150;
  TrafficCamSim sim(config);
  for (int f = 0; f < 150; f += 11) {
    const FrameTruth truth = sim.TruthAt(f);
    for (auto [behind, front] : sim.BehindPairsAt(f)) {
      float behind_depth = -1, front_depth = -1;
      for (const SceneObject& o : truth.objects) {
        if (o.object_id == behind) behind_depth = o.depth;
        if (o.object_id == front) front_depth = o.depth;
      }
      EXPECT_GT(behind_depth, front_depth + 2.0f);
    }
  }
}

TEST(TrafficCamTest, SharedCarIdsAppearInBothCameras) {
  TrafficCamConfig cam1, cam2;
  cam1.num_frames = cam2.num_frames = 100;
  cam1.seed = 111;
  cam2.seed = 222;
  cam1.shared_car_ids = {7001, 7002};
  cam2.shared_car_ids = {7001, 7002};
  TrafficCamSim a(cam1), b(cam2);
  auto ids_of = [](const TrafficCamSim& sim) {
    std::set<int> ids;
    for (int f = 0; f < 100; ++f) {
      for (const SceneObject& o : sim.TruthAt(f).objects) {
        if (o.cls == nn::ObjectClass::kCar) ids.insert(o.object_id);
      }
    }
    return ids;
  };
  auto ids_a = ids_of(a), ids_b = ids_of(b);
  EXPECT_TRUE(ids_a.count(7001));
  EXPECT_TRUE(ids_b.count(7001));
  // Shared identity renders with identical body color in both cameras.
  SceneObject oa, ob;
  oa.cls = ob.cls = nn::ObjectClass::kCar;
  bool found_a = false, found_b = false;
  for (int f = 0; f < 100 && !(found_a && found_b); ++f) {
    for (const SceneObject& o : a.TruthAt(f).objects) {
      if (o.object_id == 7001) {
        oa = o;
        found_a = true;
      }
    }
    for (const SceneObject& o : b.TruthAt(f).objects) {
      if (o.object_id == 7001) {
        ob = o;
        found_b = true;
      }
    }
  }
  ASSERT_TRUE(found_a && found_b);
  uint8_t rgb_a[3], rgb_b[3];
  ObjectColor(oa, rgb_a);
  ObjectColor(ob, rgb_b);
  EXPECT_EQ(rgb_a[0], rgb_b[0]);
  EXPECT_EQ(rgb_a[1], rgb_b[1]);
  EXPECT_EQ(rgb_a[2], rgb_b[2]);
}

TEST(FootballTest, TrackedPlayerInEveryVideo) {
  FootballConfig config;
  config.frames_per_video = 20;
  FootballSim sim(config);
  for (int v = 0; v < sim.num_videos(); ++v) {
    auto trajectory = sim.TrackedTrajectory(v);
    EXPECT_EQ(trajectory.size(),
              static_cast<size_t>(config.frames_per_video));
  }
}

TEST(FootballTest, JerseysAreUniqueWithinVideo) {
  FootballConfig config;
  FootballSim sim(config);
  for (int v = 0; v < sim.num_videos(); ++v) {
    const FrameTruth truth = sim.TruthAt(v, 0);
    std::set<std::string> jerseys;
    for (const SceneObject& o : truth.objects) {
      EXPECT_TRUE(jerseys.insert(o.text).second)
          << "duplicate jersey " << o.text << " in video " << v;
    }
  }
}

TEST(FootballTest, PlayersStayInBounds) {
  FootballConfig config;
  config.frames_per_video = 200;  // long enough to bounce repeatedly
  FootballSim sim(config);
  for (int f = 0; f < 200; f += 17) {
    for (const SceneObject& o : sim.TruthAt(2, f).objects) {
      EXPECT_GE(o.bbox.x0, 0);
      EXPECT_GE(o.bbox.y0, 0);
      EXPECT_LE(o.bbox.x1, config.width);
      EXPECT_LE(o.bbox.y1, config.height);
    }
  }
}

TEST(PcTest, DuplicatePairsAreWellFormed) {
  PcConfig config;
  config.num_images = 100;
  config.num_duplicates = 10;
  PcSim sim(config);
  auto pairs = sim.DuplicatePairs();
  ASSERT_EQ(pairs.size(), 10u);
  for (auto [base, dup] : pairs) {
    EXPECT_LT(base, dup);
    EXPECT_EQ(sim.DuplicateOf(dup), base);
    EXPECT_EQ(sim.DuplicateOf(base), -1);
    // Same content dimensions, nearly identical pixels.
    Image a = sim.ImageAt(base);
    Image b = sim.ImageAt(dup);
    ASSERT_TRUE(a.SameShape(b));
    EXPECT_LT(Image::MeanAbsDiff(a, b), 8.0);
  }
}

TEST(PcTest, TargetStringEmbeddedExactlyOnce) {
  PcConfig config;
  config.num_images = 120;
  config.num_text_images = 40;
  config.num_duplicates = 10;
  PcSim sim(config);
  int hits = 0;
  for (int i = 0; i < sim.num_images(); ++i) {
    if (sim.TextAt(i) == config.target_string) ++hits;
  }
  // The target image itself; a duplicate of it would double-count but the
  // target index is chosen outside the duplicated range.
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(sim.TextAt(sim.TargetImage()), config.target_string);
}

TEST(PcTest, ImagesVaryInSize) {
  PcConfig config;
  config.num_images = 50;
  PcSim sim(config);
  std::set<std::pair<int, int>> sizes;
  for (int i = 0; i < 50; ++i) {
    Image img = sim.ImageAt(i);
    EXPECT_GE(img.width(), config.min_width);
    EXPECT_LE(img.width(), config.max_width);
    sizes.insert({img.width(), img.height()});
  }
  EXPECT_GT(sizes.size(), 10u);
}

TEST(AccuracyTest, MatchDetectionsCountsTpFpFn) {
  std::vector<SceneObject> truth(2);
  truth[0].cls = nn::ObjectClass::kCar;
  truth[0].bbox = nn::BBox{0, 0, 10, 10};
  truth[1].cls = nn::ObjectClass::kCar;
  truth[1].bbox = nn::BBox{50, 50, 60, 60};

  std::vector<nn::Detection> dets(2);
  dets[0].label = nn::ObjectClass::kCar;
  dets[0].bbox = nn::BBox{1, 1, 10, 10};  // matches truth[0]
  dets[0].score = 0.9f;
  dets[1].label = nn::ObjectClass::kCar;
  dets[1].bbox = nn::BBox{80, 80, 90, 90};  // false positive
  dets[1].score = 0.8f;

  PrecisionRecall pr =
      MatchDetections(dets, truth, nn::ObjectClass::kCar, 0.3f);
  EXPECT_EQ(pr.tp, 1);
  EXPECT_EQ(pr.fp, 1);
  EXPECT_EQ(pr.fn, 1);
  EXPECT_DOUBLE_EQ(pr.precision(), 0.5);
  EXPECT_DOUBLE_EQ(pr.recall(), 0.5);
  EXPECT_NEAR(pr.f1(), 0.5, 1e-9);
}

TEST(AccuracyTest, GreedyMatchingIsOneToOne) {
  std::vector<SceneObject> truth(1);
  truth[0].cls = nn::ObjectClass::kPerson;
  truth[0].bbox = nn::BBox{0, 0, 10, 10};
  // Two detections on the same object: one TP, one FP.
  std::vector<nn::Detection> dets(2);
  for (auto& d : dets) {
    d.label = nn::ObjectClass::kPerson;
    d.bbox = nn::BBox{0, 0, 10, 10};
    d.score = 0.5f;
  }
  PrecisionRecall pr =
      MatchDetections(dets, truth, nn::ObjectClass::kPerson, 0.3f);
  EXPECT_EQ(pr.tp, 1);
  EXPECT_EQ(pr.fp, 1);
  EXPECT_EQ(pr.fn, 0);
}

TEST(AccuracyTest, ScorePairsCanonicalizesOrder) {
  PrecisionRecall pr = ScorePairs({{2, 1}, {3, 4}}, {{1, 2}, {5, 6}});
  EXPECT_EQ(pr.tp, 1);
  EXPECT_EQ(pr.fp, 1);
  EXPECT_EQ(pr.fn, 1);
}

TEST(AccuracyTest, RelativeError) {
  EXPECT_DOUBLE_EQ(RelativeError(90, 100), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(RelativeError(5, 0), 1.0);
}

TEST(AccuracyTest, MergeAccumulates) {
  PrecisionRecall a{1, 2, 3};
  PrecisionRecall b{4, 5, 6};
  a.Merge(b);
  EXPECT_EQ(a.tp, 5);
  EXPECT_EQ(a.fp, 7);
  EXPECT_EQ(a.fn, 9);
}

}  // namespace
}  // namespace sim
}  // namespace deeplens
