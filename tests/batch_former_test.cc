// Cross-query device batch formation (exec/batch_former.h).
//
// Two layers of coverage. Direct BatchFormer tests pin the queueing
// mechanics deterministically: K concurrent sessions' distinct patches
// produce exactly ceil(distinct/B) invocations, a lone submitter
// deadline-flushes within its own DEEPLENS_BATCH_WAIT_US (the no-stall
// guarantee), Drain() resolves staged patches at teardown, an oversized
// backlog splits into threshold-sized chunks, and a per-item error fails
// only its own caller. Database-level tests prove the integrated path —
// Cached* wrappers + singleflight + cascades + batched model entry
// points — byte-identical to unbatched execution under a randomized
// concurrent differential suite.
//
// Runs under the TSan CI stage (label: parallel) — the former's queues
// are hit from many threads here by construction.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "cache/inference_cache.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "core/cost_model.h"
#include "core/database.h"
#include "core/query.h"
#include "core/session.h"
#include "exec/batch_former.h"
#include "exec/nn_udf.h"
#include "sim/scene.h"

namespace deeplens {
namespace {

using std::chrono::steady_clock;

double ElapsedMs(steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(steady_clock::now() -
                                                   start)
      .count();
}

// Batch function that echoes each item's frame_h as a double payload —
// enough to verify per-item routing without any model in the loop.
BatchFormer::BatchFn EchoFrameH() {
  return [](const std::vector<const BatchFormer::Item*>& items) {
    std::vector<BatchFormer::ItemOutcome> out;
    out.reserve(items.size());
    for (const BatchFormer::Item* item : items) {
      out.emplace_back(InferenceValue{static_cast<double>(item->frame_h)});
    }
    return out;
  };
}

double PayloadOf(const BatchFormer::Outcome& outcome) {
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  if (!outcome.ok()) return -1.0;
  const double* d = std::get_if<double>(&(*outcome)->payload);
  EXPECT_NE(d, nullptr);
  return d != nullptr ? *d : -1.0;
}

// --- Direct former mechanics --------------------------------------------

// 4 sessions x 4 distinct patches with batch size 4: exactly 16/4 = 4
// device invocations, each carrying exactly 4 patches. Deterministic
// because the total is a multiple of the threshold and flushes claim
// threshold-sized chunks while any remain.
TEST(BatchFormerTest, ConcurrentDistinctPatchesBoundInvocations) {
  BatchFormer former;
  former.Configure(BatchFormerConfig{4, /*wait_us=*/10000000});
  constexpr int kThreads = 4;
  constexpr int kItemsPerThread = 4;
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItemsPerThread; ++i) {
        const int id = t * kItemsPerThread + i;
        BatchFormer::Item item;
        item.frame_h = id;
        auto outcome = former.Run("ocr@cpu", "key" + std::to_string(id), item,
                                  nullptr, EchoFrameH());
        if (PayloadOf(outcome) != static_cast<double>(id)) wrong.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wrong.load(), 0);
  const BatchFormerStats stats = former.Stats();
  EXPECT_EQ(stats.staged, 16u);
  EXPECT_EQ(stats.invocations, 4u);  // == ceil(16 distinct / batch 4)
  EXPECT_EQ(stats.batched_items, 16u);
  EXPECT_EQ(stats.max_batch, 4u);
  EXPECT_EQ(stats.deadline_flushes, 0u);
  EXPECT_EQ(stats.pending, 0u);
}

// A single session staging one patch must not wait for a batch that
// never fills: its own deadline fires and it flushes itself.
TEST(BatchFormerTest, DeadlineFlushWithSingleSession) {
  BatchFormer former;
  former.Configure(BatchFormerConfig{64, /*wait_us=*/30000});
  BatchFormer::Item item;
  item.frame_h = 7;
  const auto start = steady_clock::now();
  auto outcome = former.Run("ocr@cpu", "lonely", item, nullptr, EchoFrameH());
  const double ms = ElapsedMs(start);
  EXPECT_EQ(PayloadOf(outcome), 7.0);
  // Waited for batch-mates (~30ms) but nowhere near a stall; the bound
  // is generous for loaded CI machines.
  EXPECT_LT(ms, 5000.0);
  const BatchFormerStats stats = former.Stats();
  EXPECT_EQ(stats.invocations, 1u);
  EXPECT_EQ(stats.deadline_flushes, 1u);
  EXPECT_EQ(stats.size_flushes, 0u);
  EXPECT_EQ(stats.max_batch, 1u);
}

// Drain() (teardown / reconfiguration) flushes staged patches instead of
// leaving their submitters to their (here: far-future) deadlines.
TEST(BatchFormerTest, DrainResolvesStagedPatches) {
  BatchFormer former;
  former.Configure(BatchFormerConfig{64, /*wait_us=*/10000000});
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      BatchFormer::Item item;
      item.frame_h = t;
      auto outcome = former.Run("depth@cpu", "key" + std::to_string(t), item,
                                nullptr, EchoFrameH());
      if (PayloadOf(outcome) != static_cast<double>(t)) wrong.fetch_add(1);
    });
  }
  const auto start = steady_clock::now();
  while (former.Stats().pending < 3 && ElapsedMs(start) < 5000.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(former.Stats().pending, 3u);
  former.Drain();
  for (auto& th : threads) th.join();
  EXPECT_EQ(wrong.load(), 0);
  const BatchFormerStats stats = former.Stats();
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_GE(stats.drain_flushes, 1u);
  EXPECT_EQ(stats.invocations, 1u);
  EXPECT_EQ(stats.max_batch, 3u);
}

// While one flush is running the model, more patches pile up past the
// threshold; the continuing flusher splits the oversized backlog into
// threshold-sized chunks, and the sub-threshold tail deadline-flushes.
TEST(BatchFormerTest, OversizedBacklogSplitsIntoChunks) {
  BatchFormer former;
  former.Configure(BatchFormerConfig{2, /*wait_us=*/300000});
  std::atomic<bool> first_started{false};
  std::atomic<bool> release{false};
  const BatchFormer::BatchFn blocking_fn =
      [&](const std::vector<const BatchFormer::Item*>& items) {
        if (!first_started.exchange(true)) {
          while (!release.load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
        std::vector<BatchFormer::ItemOutcome> out;
        out.reserve(items.size());
        for (const BatchFormer::Item* item : items) {
          out.emplace_back(InferenceValue{static_cast<double>(item->frame_h)});
        }
        return out;
      };
  std::atomic<int> wrong{0};
  auto submit = [&](int id) {
    BatchFormer::Item item;
    item.frame_h = id;
    auto outcome = former.Run("ocr@cpu", "key" + std::to_string(id), item,
                              nullptr, blocking_fn);
    if (PayloadOf(outcome) != static_cast<double>(id)) wrong.fetch_add(1);
  };
  std::vector<std::thread> threads;
  threads.emplace_back(submit, 0);
  threads.emplace_back(submit, 1);
  auto start = steady_clock::now();
  while (!first_started.load() && ElapsedMs(start) < 5000.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(first_started.load());
  // The first chunk (2 patches) is blocked inside the model; 5 more
  // patches stage behind it.
  for (int id = 2; id < 7; ++id) threads.emplace_back(submit, id);
  start = steady_clock::now();
  while (former.Stats().pending < 5 && ElapsedMs(start) < 5000.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(former.Stats().pending, 5u);
  release.store(true);
  for (auto& th : threads) th.join();
  EXPECT_EQ(wrong.load(), 0);
  const BatchFormerStats stats = former.Stats();
  // 7 patches at threshold 2: chunks of 2+2+2, then the lone tail
  // deadline-flushes — never one oversized invocation.
  EXPECT_EQ(stats.invocations, 4u);
  EXPECT_EQ(stats.batched_items, 7u);
  EXPECT_EQ(stats.max_batch, 2u);
  EXPECT_EQ(stats.size_flushes, 3u);
  EXPECT_EQ(stats.deadline_flushes, 1u);
}

// One degenerate patch in a formed batch fails only its own caller.
TEST(BatchFormerTest, PerItemErrorFailsOnlyItsCaller) {
  BatchFormer former;
  former.Configure(BatchFormerConfig{2, /*wait_us=*/10000000});
  const BatchFormer::BatchFn fn =
      [](const std::vector<const BatchFormer::Item*>& items) {
        std::vector<BatchFormer::ItemOutcome> out;
        out.reserve(items.size());
        for (const BatchFormer::Item* item : items) {
          if (item->frame_h == 13) {
            out.emplace_back(
                Status::InvalidArgument("degenerate patch"));
          } else {
            out.emplace_back(
                InferenceValue{static_cast<double>(item->frame_h)});
          }
        }
        return out;
      };
  BatchFormer::Outcome good = Status::Internal("unset");
  BatchFormer::Outcome bad = Status::Internal("unset");
  std::thread t1([&] {
    BatchFormer::Item item;
    item.frame_h = 4;
    good = former.Run("depth@cpu", "good", item, nullptr, fn);
  });
  std::thread t2([&] {
    BatchFormer::Item item;
    item.frame_h = 13;
    bad = former.Run("depth@cpu", "bad", item, nullptr, fn);
  });
  t1.join();
  t2.join();
  EXPECT_EQ(PayloadOf(good), 4.0);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument()) << bad.status().ToString();
}

// --- Integrated differential suite --------------------------------------

PatchCollection MakePanelView(uint64_t seed, int n) {
  Rng rng(seed);
  PatchCollection out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Image panel(64, 64, 3);
    for (auto& b : panel.bytes()) {
      b = static_cast<uint8_t>(10 + rng.NextU64Below(20));
    }
    if (rng.NextU64Below(100) < 60) {
      sim::DrawDigits(&panel, nn::BBox{4, 20, 60, 44},
                      std::to_string(100 + rng.NextU64Below(900)));
    }
    Patch p;
    p.set_id(static_cast<PatchId>(i + 1));
    p.set_ref(ImgRef{"panels", i, kInvalidPatchId});
    p.set_pixels(std::move(panel));
    p.set_bbox(nn::BBox{2, 2, 40, 30 + static_cast<int>(i % 17)});
    p.mutable_meta().Set(meta_keys::kFrameNo, int64_t{i});
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<uint8_t> SerializePatches(const PatchCollection& patches) {
  ByteBuffer buf;
  buf.PutU64(patches.size());
  for (const Patch& p : patches) p.SerializeInto(&buf);
  return buf.data();
}

class BatchFormerDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("dl_bformer_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                .string();
    std::filesystem::remove_all(root_);
    auto db = Database::Open(root_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    CacheConfig cache_config;
    cache_config.budget_bytes = 32 << 20;
    // LRU admission: TinyLFU's timing-dependent cold-miss denials would
    // make which patches re-stage nondeterministic.
    cache_config.admission = CacheAdmission::kLru;
    db_->ConfigureCaches(cache_config);
  }
  void TearDown() override {
    db_.reset();
    std::filesystem::remove_all(root_);
  }

  void EnableBatching(uint64_t batch_size, uint64_t wait_us) {
    ServingConfig config = db_->serving_config();
    config.device_batch_size = batch_size;
    config.batch_wait_us = wait_us;
    db_->ConfigureServing(config);
  }

  // One query of the randomized mix, built against `cache`.
  std::vector<uint8_t> RunOp(int op, InferenceCache* cache) {
    if (op % 2 == 0) {
      Query q(db_.get(), "panels");
      q.Where(Ne(OcrTextUdf(0, db_->ocr(), cache), Lit("")));
      auto r = q.Execute();
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      return r.ok() ? SerializePatches(*r) : std::vector<uint8_t>{0xff};
    }
    Query q(db_.get(), "panels");
    q.Where(Lt(DepthUdf(0, db_->depth_model(), 480, cache), Lit(25.0)));
    auto r = q.Execute();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? SerializePatches(*r) : std::vector<uint8_t>{0xff};
  }

  std::string root_;
  std::unique_ptr<Database> db_;
};

// Randomized differential suite: K concurrent sessions with the former
// enabled must produce byte-identical results to unbatched solo
// execution, and the former must actually have formed batches.
TEST_F(BatchFormerDbTest, ConcurrentBatchedByteIdenticalToUnbatched) {
  ASSERT_TRUE(db_->RegisterView("panels", MakePanelView(0xba7c4, 48)).ok());

  constexpr int kOps = 2;
  // Unbatched solo reference (the former is disabled by default).
  ASSERT_FALSE(db_->batch_former()->enabled());
  std::vector<std::vector<uint8_t>> reference(kOps);
  for (int op = 0; op < kOps; ++op) {
    reference[op] = RunOp(op, db_->TenantInferenceCache("ref"));
  }

  // Batching on. ConfigureServing retires tenant cache partitions, so
  // every session below starts cold and its misses stage into batches.
  EnableBatching(/*batch_size=*/4, /*wait_us=*/20000);
  constexpr int kThreads = 4;
  for (int rep = 0; rep < 2; ++rep) {
    std::atomic<int> mismatches{0};
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t, rep] {
        Session session = db_->CreateSession("tenant" + std::to_string(t));
        Rng rng(0xf04e5 + static_cast<uint64_t>(t) * 131 +
                static_cast<uint64_t>(rep));
        for (int i = 0; i < 3; ++i) {
          const int op = static_cast<int>(rng.NextU64Below(kOps));
          Status st = session.Run([&]() -> Status {
            if (RunOp(op, session.inference_cache()) != reference[op]) {
              mismatches.fetch_add(1);
            }
            return Status::OK();
          });
          if (!st.ok()) failures.fetch_add(1);
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(mismatches.load(), 0) << "rep " << rep;
    EXPECT_EQ(failures.load(), 0) << "rep " << rep;
  }
  const BatchFormerStats stats = db_->batch_former()->Stats();
  EXPECT_GT(stats.staged, 0u);
  EXPECT_GT(stats.invocations, 0u);
  EXPECT_EQ(stats.pending, 0u);
  // Amortization actually happened: fewer invocations than patches.
  EXPECT_LT(stats.invocations, stats.batched_items);
}

// Cascade audit rows (the deterministic 1-in-16 slice that runs the full
// model on would-be proxy skips) flow through Cached* into the former
// like any other row, and results stay byte-identical.
TEST_F(BatchFormerDbTest, CascadeAuditRowsJoinFormedBatches) {
  ASSERT_TRUE(db_->RegisterView("panels", MakePanelView(0xcA5c, 64)).ok());
  ASSERT_EQ(::setenv("DEEPLENS_CASCADE_THRESHOLD", "0.25", 1), 0);

  // Reference: cascade on, batching off.
  std::vector<uint8_t> reference = RunOp(0, db_->TenantInferenceCache("ref"));

  EnableBatching(/*batch_size=*/4, /*wait_us=*/20000);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      Session session = db_->CreateSession("casc" + std::to_string(t));
      Status st = session.Run([&]() -> Status {
        if (RunOp(0, session.inference_cache()) != reference) {
          mismatches.fetch_add(1);
        }
        return Status::OK();
      });
      EXPECT_TRUE(st.ok()) << st.ToString();
    });
  }
  for (auto& th : threads) th.join();
  ::unsetenv("DEEPLENS_CASCADE_THRESHOLD");
  EXPECT_EQ(mismatches.load(), 0);
  const BatchFormerStats stats = db_->batch_former()->Stats();
  EXPECT_GT(stats.staged, 0u);
  EXPECT_GT(stats.invocations, 0u);
}

// Explain() surfaces the configured batch shape, the former's running
// totals, and (once profiled) the overhead/marginal decomposition.
TEST_F(BatchFormerDbTest, ExplainReportsDeviceBatching) {
  ASSERT_TRUE(db_->RegisterView("panels", MakePanelView(0xe4b1a, 24)).ok());
  EnableBatching(/*batch_size=*/4, /*wait_us=*/20000);
  CostModel::Global()->Clear();

  Session session = db_->CreateSession("explainer");
  Status st = session.Run([&]() -> Status {
    Query q(db_.get(), "panels");
    q.Where(Ne(OcrTextUdf(0, db_->ocr(), session.inference_cache()),
               Lit("")));
    auto r = q.Execute();
    return r.ok() ? Status::OK() : r.status();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();

  Query q(db_.get(), "panels");
  q.Where(Ne(OcrTextUdf(0, db_->ocr(), session.inference_cache()), Lit("")));
  auto plan = session.Explain(q);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->device_batching.enabled);
  EXPECT_EQ(plan->device_batching.batch_size, 4u);
  EXPECT_GT(plan->device_batches_formed, 0u);
  EXPECT_GT(plan->device_batched_patches, 0u);
  EXPECT_NE(plan->description.find("device batching"), std::string::npos)
      << plan->description;
  // The execution above recorded real flushes, so the cost model has a
  // profile and the plan carries a non-trivial occupancy estimate.
  EXPECT_GT(plan->device_batching.mean_items, 0.0);
  auto est = CostModel::Global()->EstimateBatchCost(model_names::kOcr);
  ASSERT_TRUE(est.has_value());
  EXPECT_GE(est->amortized_speedup, 0.0);
}

}  // namespace
}  // namespace deeplens
