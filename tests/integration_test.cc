// End-to-end integration tests: the full benchmark workload (ETL → all six
// queries, baseline vs optimized equivalence), encoding accuracy effects,
// and cross-layer consistency.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/benchmark_queries.h"
#include "tensor/ops.h"

namespace deeplens {
namespace bench {
namespace {

// One shared workload for the whole suite: ETL is the expensive part and
// every test reads but does not mutate the views.
class WorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    root_ = (std::filesystem::temp_directory_path() /
             ("dl_integration_" + std::to_string(::getpid())))
                .string();
    std::filesystem::remove_all(root_);
    WorkloadConfig config;
    config.traffic.num_frames = 220;
    config.football.num_videos = 4;
    config.football.frames_per_video = 10;
    config.pc.num_images = 80;
    config.pc.num_duplicates = 8;
    config.pc.num_text_images = 20;
    auto workload = BenchmarkWorkload::Create(root_, config);
    ASSERT_TRUE(workload.ok()) << workload.status().ToString();
    workload_ = std::move(workload).value().release();
    ASSERT_TRUE(workload_->RunEtl(nullptr, &etl_).ok());
  }
  static void TearDownTestSuite() {
    delete workload_;
    workload_ = nullptr;
    std::filesystem::remove_all(root_);
  }

  static std::string root_;
  static BenchmarkWorkload* workload_;
  static EtlTimings etl_;
};

std::string WorkloadTest::root_;
BenchmarkWorkload* WorkloadTest::workload_ = nullptr;
EtlTimings WorkloadTest::etl_;

TEST_F(WorkloadTest, EtlProducedAllViews) {
  EXPECT_GT(etl_.traffic_ms, 0);
  EXPECT_GT(etl_.total(), 0);
  for (const char* view :
       {"traffic_dets", "pc_images", "pc_text", "football_players",
        "football_jerseys"}) {
    auto v = workload_->db()->GetView(view);
    ASSERT_TRUE(v.ok()) << view;
    EXPECT_GT((*v)->patches.size(), 0u) << view;
  }
}

TEST_F(WorkloadTest, EveryPatchHasLineage) {
  auto view = workload_->db()->GetView("traffic_dets");
  ASSERT_TRUE(view.ok());
  for (const Patch& p : (*view)->patches) {
    auto root = workload_->db()->lineage()->Backtrace(p.id());
    ASSERT_TRUE(root.ok());
    EXPECT_EQ(root->dataset, "traffic");
    EXPECT_GE(root->frameno, 0);
  }
}

TEST_F(WorkloadTest, JerseyLineageWalksToPlayerAndFrame) {
  auto jerseys = workload_->db()->GetView("football_jerseys");
  ASSERT_TRUE(jerseys.ok());
  ASSERT_GT((*jerseys)->patches.size(), 0u);
  const Patch& jersey = (*jerseys)->patches[0];
  // The jersey derives from a player patch.
  EXPECT_NE(jersey.ref().parent, kInvalidPatchId);
  auto chain = workload_->db()->lineage()->Chain(jersey.id());
  ASSERT_TRUE(chain.ok());
  EXPECT_GE(chain->size(), 2u);
  auto root = workload_->db()->lineage()->Backtrace(jersey.id());
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->dataset, "football");
}

TEST_F(WorkloadTest, BaselineAndOptimizedAgreeOnEveryQuery) {
  ASSERT_TRUE(workload_->DropAllIndexes().ok());
  std::vector<QueryRun> baseline;
  for (int q = 1; q <= 6; ++q) {
    auto run = workload_->RunQuery(q, false);
    ASSERT_TRUE(run.ok()) << "q" << q << ": " << run.status().ToString();
    baseline.push_back(*run);
  }
  auto build_ms = workload_->BuildOptimizedIndexes();
  ASSERT_TRUE(build_ms.ok());
  EXPECT_GT(*build_ms, 0.0);
  for (int q = 1; q <= 6; ++q) {
    auto run = workload_->RunQuery(q, true);
    ASSERT_TRUE(run.ok()) << "q" << q;
    // The physical design must never change the answer (paper: logical-
    // physical separation).
    EXPECT_EQ(run->result_count, baseline[static_cast<size_t>(q - 1)].result_count)
        << "q" << q;
  }
}

TEST_F(WorkloadTest, QueryAccuracySanity) {
  ASSERT_TRUE(workload_->BuildOptimizedIndexes().ok());
  auto q1 = workload_->RunQ1(true);
  ASSERT_TRUE(q1.ok());
  EXPECT_GE(q1->recall, 0.9);
  EXPECT_GE(q1->precision, 0.9);

  auto q2 = workload_->RunQ2(true);
  ASSERT_TRUE(q2.ok());
  EXPECT_GE(q2->recall, 0.95);
  EXPECT_GE(q2->precision, 0.95);

  auto q5 = workload_->RunQ5(true);
  ASSERT_TRUE(q5.ok());
  EXPECT_EQ(q5->result_count, 1u);
  EXPECT_EQ(q5->recall, 1.0);

  auto q6 = workload_->RunQ6(true);
  ASSERT_TRUE(q6.ok());
  EXPECT_GE(q6->precision, 0.7);
  EXPECT_GE(q6->recall, 0.3);
}

TEST_F(WorkloadTest, Q4CountIsNearTruth) {
  ASSERT_TRUE(workload_->BuildOptimizedIndexes().ok());
  auto q4 = workload_->RunQ4(true);
  ASSERT_TRUE(q4.ok());
  const int truth = workload_->traffic().DistinctPedestrians();
  EXPECT_GT(q4->result_count, 0u);
  // Dedup is approximate; demand the count is within 2× of truth.
  EXPECT_LE(q4->result_count, static_cast<uint64_t>(2 * truth));
  EXPECT_GE(static_cast<int>(q4->result_count), truth / 2);
}

TEST_F(WorkloadTest, Table1PlanOrderTradeoff) {
  ASSERT_TRUE(workload_->BuildOptimizedIndexes().ok());
  auto filter_first = workload_->RunQ4PlanOrder(true);
  ASSERT_TRUE(filter_first.ok());
  auto match_first = workload_->RunQ4PlanOrder(false);
  ASSERT_TRUE(match_first.ok());
  // The paper's Table 1 shape: matching before filtering recovers at
  // least as many true pairs, and costs more time.
  EXPECT_GE(match_first->recall, filter_first->recall);
  EXPECT_GT(match_first->runtime_ms, filter_first->runtime_ms);
  EXPECT_GT(filter_first->recall, 0.2);
  EXPECT_GT(filter_first->precision, 0.5);
}

TEST_F(WorkloadTest, OptimizedQ6MuchFasterThanBaseline) {
  ASSERT_TRUE(workload_->BuildOptimizedIndexes().ok());
  auto baseline = workload_->RunQ6(false);
  ASSERT_TRUE(baseline.ok());
  auto optimized = workload_->RunQ6(true);
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(baseline->result_count, optimized->result_count);
  EXPECT_LT(optimized->millis, baseline->millis);
}

TEST_F(WorkloadTest, Q2AccuracyFromViewIsHigh) {
  auto acc = workload_->Q2AccuracyFromView("traffic_dets");
  ASSERT_TRUE(acc.ok());
  EXPECT_GE(*acc, 0.95);
}

// --- Encoding accuracy pipeline (Figure 2 mechanism) ----------------------

TEST(EncodingAccuracyTest, LossyEncodingDegradesDetection) {
  // Render traffic frames, push them through each quality level, and
  // verify detection accuracy is ordered High >= Medium >= Low (with a
  // meaningful drop at Low).
  sim::TrafficCamConfig config;
  config.num_frames = 40;
  sim::TrafficCamSim sim(config);
  nn::TinySsdDetector detector;
  nn::Device* device = nn::GetDevice(nn::DeviceKind::kCpuVector);

  auto f1_for = [&](std::optional<codec::Quality> quality) -> double {
    sim::PrecisionRecall total;
    for (int f = 0; f < config.num_frames; f += 2) {
      Image frame = sim.FrameAt(f);
      if (quality.has_value()) {
        auto encoded = codec::EncodeImage(frame, *quality);
        auto decoded = codec::DecodeImage(Slice(encoded));
        EXPECT_TRUE(decoded.ok());
        frame = std::move(decoded).value();
      }
      auto dets = detector.Detect(frame, device);
      EXPECT_TRUE(dets.ok());
      // IoU 0.5: strict enough that block artifacts at low quality are
      // penalized (boxes snap to 8x8 DCT block boundaries).
      total.Merge(sim::MatchDetections(*dets, sim.TruthAt(f).objects,
                                       nn::ObjectClass::kCar, 0.5f));
      total.Merge(sim::MatchDetections(*dets, sim.TruthAt(f).objects,
                                       nn::ObjectClass::kPerson, 0.5f));
    }
    return total.f1();
  };

  const double raw = f1_for(std::nullopt);
  const double high = f1_for(codec::Quality::kHigh);
  const double low = f1_for(codec::Quality::kLow);
  EXPECT_GE(raw, 0.9);
  // High-quality encoding is near-lossless for the pipeline.
  EXPECT_GE(high, raw - 0.03);
  // Low quality visibly degrades accuracy.
  EXPECT_LT(low, high - 0.03);
}

TEST(CrossCameraTest, SharedCarsMatchAcrossVideos) {
  // The paper's motivating join: find the same car in two feeds. Shared
  // identities render with identical body colors, so histogram features
  // of their crops match across cameras.
  sim::TrafficCamConfig cam1, cam2;
  cam1.num_frames = cam2.num_frames = 60;
  cam1.seed = 901;
  cam2.seed = 902;
  cam1.shared_car_ids = {7500};
  cam2.shared_car_ids = {7500};
  sim::TrafficCamSim a(cam1), b(cam2);
  ColorHistogramOptions features;
  features.bins = 16;
  features.grid = 2;

  auto crop_feature = [&](const sim::TrafficCamSim& sim,
                          int car_id) -> Tensor {
    for (int f = 0; f < 60; ++f) {
      for (const auto& o : sim.TruthAt(f).objects) {
        if (o.object_id == car_id) {
          Image frame = sim.FrameAt(f);
          return ColorHistogramFeature(
              frame.Crop(o.bbox.x0, o.bbox.y0, o.bbox.x1, o.bbox.y1),
              features);
        }
      }
    }
    return Tensor();
  };
  Tensor shared_a = crop_feature(a, 7500);
  Tensor shared_b = crop_feature(b, 7500);
  ASSERT_FALSE(shared_a.empty());
  ASSERT_FALSE(shared_b.empty());
  EXPECT_LT(ops::L2Distance(shared_a, shared_b), 0.3f);

  // A private car from camera 2 must NOT match the shared car.
  int private_id = -1;
  for (const auto& o : b.TruthAt(30).objects) {
    if (o.cls == nn::ObjectClass::kCar && o.object_id != 7500) {
      private_id = o.object_id;
    }
  }
  if (private_id >= 0) {
    Tensor private_feat = crop_feature(b, private_id);
    ASSERT_FALSE(private_feat.empty());
    EXPECT_GT(ops::L2Distance(shared_a, private_feat), 0.3f);
  }
}

}  // namespace
}  // namespace bench
}  // namespace deeplens
