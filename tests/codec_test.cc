// Unit tests for codec/: DCT orthogonality, quantization, entropy coding,
// the LJPG image codec (quality → loss monotonicity), and the DLV1 video
// codec (GOP structure, sequential decode, compression properties).
#include <gtest/gtest.h>

#include <cmath>

#include "codec/dct.h"
#include "codec/entropy.h"
#include "codec/image_codec.h"
#include "codec/quant.h"
#include "codec/video_codec.h"
#include "common/rng.h"

namespace deeplens {
namespace codec {
namespace {

Image NoisyImage(int w, int h, uint64_t seed, int base = 120,
                 int amplitude = 40) {
  Image img(w, h, 3);
  Rng rng(seed);
  for (auto& b : img.bytes()) {
    b = static_cast<uint8_t>(
        std::clamp<int64_t>(base + rng.NextInt(-amplitude, amplitude), 0,
                            255));
  }
  return img;
}

TEST(DctTest, RoundTripIsIdentity) {
  Rng rng(1);
  float block[kBlockArea], coeffs[kBlockArea], back[kBlockArea];
  for (int i = 0; i < kBlockArea; ++i) {
    block[i] = static_cast<float>(rng.NextUniform(-128, 128));
  }
  ForwardDct8x8(block, coeffs);
  InverseDct8x8(coeffs, back);
  for (int i = 0; i < kBlockArea; ++i) {
    EXPECT_NEAR(back[i], block[i], 1e-3f);
  }
}

TEST(DctTest, ConstantBlockHasOnlyDcCoefficient) {
  float block[kBlockArea], coeffs[kBlockArea];
  for (int i = 0; i < kBlockArea; ++i) block[i] = 50.0f;
  ForwardDct8x8(block, coeffs);
  // DC = 50 * 8 (orthonormal scaling), all AC ~ 0.
  EXPECT_NEAR(coeffs[0], 400.0f, 1e-2f);
  for (int i = 1; i < kBlockArea; ++i) EXPECT_NEAR(coeffs[i], 0.0f, 1e-3f);
}

TEST(DctTest, EnergyPreserved) {
  // Orthonormal transform preserves the L2 norm (Parseval).
  Rng rng(2);
  float block[kBlockArea], coeffs[kBlockArea];
  for (int i = 0; i < kBlockArea; ++i) {
    block[i] = static_cast<float>(rng.NextGaussian() * 30);
  }
  ForwardDct8x8(block, coeffs);
  float e1 = 0, e2 = 0;
  for (int i = 0; i < kBlockArea; ++i) {
    e1 += block[i] * block[i];
    e2 += coeffs[i] * coeffs[i];
  }
  EXPECT_NEAR(e1, e2, e1 * 1e-4f);
}

TEST(QuantTest, TablesGrowWithLossiness) {
  const float* high = QuantTable(Quality::kHigh);
  const float* low = QuantTable(Quality::kLow);
  float sum_high = 0, sum_low = 0;
  for (int i = 0; i < kBlockArea; ++i) {
    EXPECT_GE(high[i], 1.0f);
    sum_high += high[i];
    sum_low += low[i];
  }
  EXPECT_GT(sum_low, sum_high);
}

TEST(QuantTest, RoundTripErrorBoundedByTable) {
  Rng rng(3);
  float coeffs[kBlockArea], back[kBlockArea];
  int32_t q[kBlockArea];
  for (int i = 0; i < kBlockArea; ++i) {
    coeffs[i] = static_cast<float>(rng.NextUniform(-500, 500));
  }
  QuantizeBlock(coeffs, Quality::kMedium, q);
  DequantizeBlock(q, Quality::kMedium, back);
  const float* table = QuantTable(Quality::kMedium);
  for (int i = 0; i < kBlockArea; ++i) {
    EXPECT_LE(std::fabs(back[i] - coeffs[i]), table[i] * 0.5f + 1e-3f);
  }
}

TEST(EntropyTest, ZigzagIsAPermutation) {
  const int* order = ZigzagOrder();
  bool seen[kBlockArea] = {};
  for (int i = 0; i < kBlockArea; ++i) {
    ASSERT_GE(order[i], 0);
    ASSERT_LT(order[i], kBlockArea);
    EXPECT_FALSE(seen[order[i]]);
    seen[order[i]] = true;
  }
  // Starts at DC, then the two first AC coefficients.
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 8);
}

class EntropyRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(EntropyRoundTrip, RandomSparseBlocks) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  int32_t block[kBlockArea] = {};
  // Sparsity typical of quantized DCT output.
  const int nonzero = GetParam() % kBlockArea;
  for (int i = 0; i < nonzero; ++i) {
    block[rng.NextU64Below(kBlockArea)] =
        static_cast<int32_t>(rng.NextInt(-2000, 2000));
  }
  ByteBuffer buf;
  EncodeBlock(block, &buf);
  ByteReader reader(buf.AsSlice());
  int32_t decoded[kBlockArea];
  ASSERT_TRUE(DecodeBlock(&reader, decoded).ok());
  for (int i = 0; i < kBlockArea; ++i) EXPECT_EQ(decoded[i], block[i]);
}

INSTANTIATE_TEST_SUITE_P(Sparsities, EntropyRoundTrip,
                         ::testing::Values(0, 1, 3, 7, 13, 29, 47, 63, 64,
                                           100));

TEST(EntropyTest, AllZeroBlockIsTiny) {
  int32_t block[kBlockArea] = {};
  ByteBuffer buf;
  EncodeBlock(block, &buf);
  EXPECT_LE(buf.size(), 2u);
}

TEST(ImageCodecTest, RawRoundTripIsLossless) {
  Image img = NoisyImage(37, 23, 11);
  auto bytes = SerializeRawImage(img);
  auto back = DeserializeRawImage(Slice(bytes));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(Image::MeanAbsDiff(img, *back), 0.0);
}

TEST(ImageCodecTest, RejectsWrongMagic) {
  std::vector<uint8_t> garbage = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  EXPECT_TRUE(DecodeImage(Slice(garbage)).status().IsCorruption());
  EXPECT_TRUE(DeserializeRawImage(Slice(garbage)).status().IsCorruption());
}

class LjpgQuality : public ::testing::TestWithParam<Quality> {};

TEST_P(LjpgQuality, RoundTripWithinQualityBound) {
  Image img = NoisyImage(64, 48, 21, 128, 60);
  auto bytes = EncodeImage(img, GetParam());
  auto back = DecodeImage(Slice(bytes));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->width(), 64);
  EXPECT_EQ(back->height(), 48);
  const double mad = Image::MeanAbsDiff(img, *back);
  // Loss bounds per quality level; high is near-lossless.
  const double bound = GetParam() == Quality::kHigh
                           ? 4.0
                           : (GetParam() == Quality::kMedium ? 25.0 : 60.0);
  EXPECT_LE(mad, bound);
}

INSTANTIATE_TEST_SUITE_P(Levels, LjpgQuality,
                         ::testing::Values(Quality::kHigh, Quality::kMedium,
                                           Quality::kLow));

TEST(ImageCodecTest, LossAndSizeMonotonicInQuality) {
  Image img = NoisyImage(96, 64, 31, 110, 70);
  double prev_mad = -1;
  size_t prev_size = SIZE_MAX;
  for (Quality q : {Quality::kHigh, Quality::kMedium, Quality::kLow}) {
    auto bytes = EncodeImage(img, q);
    auto back = DecodeImage(Slice(bytes));
    ASSERT_TRUE(back.ok());
    const double mad = Image::MeanAbsDiff(img, *back);
    EXPECT_GT(mad, prev_mad);
    EXPECT_LT(bytes.size(), prev_size);
    prev_mad = mad;
    prev_size = bytes.size();
  }
}

TEST(ImageCodecTest, CompressesSmoothContent) {
  // Genuinely smooth content (a gradient) must compress far below raw.
  Image img(128, 128, 3);
  for (int y = 0; y < 128; ++y) {
    for (int x = 0; x < 128; ++x) {
      for (int c = 0; c < 3; ++c) {
        img.At(x, y, c) = static_cast<uint8_t>((x + y + c * 20) / 2);
      }
    }
  }
  auto encoded = EncodeImage(img, Quality::kHigh);
  const size_t raw = SerializeRawImage(img).size();
  EXPECT_LT(encoded.size() * 5, raw);  // at least 5x on smooth content
}

TEST(ImageCodecTest, NonMultipleOfBlockSizeDimensions) {
  Image img = NoisyImage(13, 9, 51);
  auto bytes = EncodeImage(img, Quality::kHigh);
  auto back = DecodeImage(Slice(bytes));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->width(), 13);
  EXPECT_EQ(back->height(), 9);
  EXPECT_LE(Image::MeanAbsDiff(img, *back), 4.5);
}

std::vector<Image> MakeVideo(int frames, int w = 48, int h = 32) {
  // A moving bright square over a static noisy background: realistic
  // inter-frame correlation for P-frame coding.
  std::vector<Image> out;
  Image background = NoisyImage(w, h, 61, 90, 8);
  for (int f = 0; f < frames; ++f) {
    Image frame = background;
    const int x0 = (f * 2) % (w - 8);
    for (int y = 10; y < 18 && y < h; ++y) {
      for (int x = x0; x < x0 + 8; ++x) {
        for (int c = 0; c < 3; ++c) frame.At(x, y, c) = 220;
      }
    }
    out.push_back(std::move(frame));
  }
  return out;
}

TEST(VideoCodecTest, RoundTripAllFrames) {
  auto frames = MakeVideo(20);
  VideoCodecOptions options;
  options.quality = Quality::kHigh;
  options.gop_size = 8;
  auto stream = EncodeVideo(frames, options);
  ASSERT_TRUE(stream.ok());
  auto decoded = DecodeVideo(Slice(*stream));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), frames.size());
  for (size_t i = 0; i < frames.size(); ++i) {
    EXPECT_LE(Image::MeanAbsDiff(frames[i], (*decoded)[i]), 4.5)
        << "frame " << i;
  }
}

TEST(VideoCodecTest, NoDriftAcrossLongGop) {
  // P-frames predict from reconstructed frames, so error must not
  // accumulate within a GOP.
  auto frames = MakeVideo(33);
  VideoCodecOptions options;
  options.quality = Quality::kMedium;
  options.gop_size = 32;
  auto stream = EncodeVideo(frames, options);
  ASSERT_TRUE(stream.ok());
  auto decoded = DecodeVideo(Slice(*stream));
  ASSERT_TRUE(decoded.ok());
  EXPECT_LE(Image::MeanAbsDiff(frames[31], (*decoded)[31]), 16.0);
}

TEST(VideoCodecTest, InterBeatsAllIntraOnStaticContent) {
  auto frames = MakeVideo(32);
  VideoCodecOptions inter;
  inter.gop_size = 32;
  VideoCodecOptions intra;
  intra.gop_size = 1;
  auto inter_stream = EncodeVideo(frames, inter);
  auto intra_stream = EncodeVideo(frames, intra);
  ASSERT_TRUE(inter_stream.ok());
  ASSERT_TRUE(intra_stream.ok());
  EXPECT_LT(inter_stream->size() * 2, intra_stream->size());
}

TEST(VideoCodecTest, SeekDecodeIsSequential) {
  auto frames = MakeVideo(16);
  VideoCodecOptions options;
  options.gop_size = 16;
  auto stream = EncodeVideo(frames, options);
  ASSERT_TRUE(stream.ok());
  VideoDecoder dec{Slice(*stream)};
  ASSERT_TRUE(dec.Init().ok());
  auto img = dec.SeekDecode(10);
  ASSERT_TRUE(img.ok());
  // Frames 0..10 were all decoded to reach frame 10.
  EXPECT_EQ(dec.frames_decoded(), 11);
  // Rewinding is impossible on a sequential stream.
  EXPECT_TRUE(dec.SeekDecode(5).status().IsInvalidArgument());
}

TEST(VideoCodecTest, EndOfStream) {
  auto frames = MakeVideo(3);
  auto stream = EncodeVideo(frames, VideoCodecOptions{});
  VideoDecoder dec{Slice(*stream)};
  ASSERT_TRUE(dec.Init().ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(dec.NextFrame().ok());
  EXPECT_TRUE(dec.NextFrame().status().IsOutOfRange());
}

TEST(VideoCodecTest, MismatchedFrameSizeRejected) {
  VideoEncoder enc{VideoCodecOptions{}};
  ASSERT_TRUE(enc.AddFrame(Image(16, 16, 3)).ok());
  EXPECT_TRUE(enc.AddFrame(Image(8, 8, 3)).IsInvalidArgument());
  EXPECT_TRUE(enc.AddFrame(Image()).IsInvalidArgument());
}

TEST(VideoCodecTest, CorruptStreamRejected) {
  std::vector<uint8_t> garbage(64, 0x42);
  VideoDecoder dec{Slice(garbage)};
  EXPECT_FALSE(dec.Init().ok());
}

TEST(VideoCodecTest, QualityControlsStreamSize) {
  auto frames = MakeVideo(12);
  size_t prev = SIZE_MAX;
  for (Quality q : {Quality::kHigh, Quality::kMedium, Quality::kLow}) {
    VideoCodecOptions options;
    options.quality = q;
    auto stream = EncodeVideo(frames, options);
    ASSERT_TRUE(stream.ok());
    EXPECT_LT(stream->size(), prev);
    prev = stream->size();
  }
}

}  // namespace
}  // namespace codec
}  // namespace deeplens
