// Multi-tenant serving harness: N session threads push a randomized mix
// of queries (full scans, radix hash joins, group-bys, cached NN UDF
// predicates) through the fair-share morsel scheduler concurrently, and
// every result must be byte-identical to the same query run alone — the
// scheduler may only reorder *when* a morsel runs, never what a query
// returns. On top of the differential battery: admission control
// (bounded concurrency, typed Saturated, blocked-then-admitted),
// fair-share interleaving (a long task set cannot starve a short one;
// weights bias the interleave), in-flight inference dedup (K concurrent
// identical UDF queries cost exactly one model invocation per distinct
// patch), and per-tenant cache partition isolation.
//
// Runs under the TSan CI stage (label: parallel) — the scheduler,
// admission gate, inflight table and per-tenant caches are all hit from
// many threads here.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "cache/inflight.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "core/database.h"
#include "core/query.h"
#include "core/session.h"
#include "exec/joins.h"
#include "exec/nn_udf.h"
#include "exec/pipeline.h"
#include "exec/scheduler.h"
#include "sim/scene.h"

namespace deeplens {
namespace {

// --- Inputs -----------------------------------------------------------------

PatchCollection MakeMetaView(uint64_t seed, size_t n) {
  Rng rng(seed);
  PatchCollection out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Patch p;
    p.set_id(static_cast<PatchId>(i + 1));
    p.set_ref(ImgRef{"serving", static_cast<int64_t>(i), kInvalidPatchId});
    p.set_bbox(nn::BBox{0, 0, 8, 8});
    p.mutable_meta().Set(meta_keys::kScore, rng.NextDouble());
    p.mutable_meta().Set("k", "k" + std::to_string(rng.NextU64Below(60)));
    p.mutable_meta().Set("g", "g" + std::to_string(rng.NextU64Below(4)));
    p.mutable_meta().Set("v", rng.NextInt(-1000, 1000));
    out.push_back(std::move(p));
  }
  return out;
}

// Digit panels with unique background noise (distinct fingerprints), most
// containing a drawn digit string OCR can recognize.
PatchCollection MakePanelView(uint64_t seed, int n) {
  Rng rng(seed);
  PatchCollection out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Image panel(64, 64, 3);
    for (auto& b : panel.bytes()) {
      b = static_cast<uint8_t>(10 + rng.NextU64Below(20));
    }
    if (rng.NextU64Below(100) < 70) {
      sim::DrawDigits(&panel, nn::BBox{4, 20, 60, 44},
                      std::to_string(100 + rng.NextU64Below(900)));
    }
    Patch p;
    p.set_id(static_cast<PatchId>(i + 1));
    p.set_ref(ImgRef{"panels", i, kInvalidPatchId});
    p.set_pixels(std::move(panel));
    p.set_bbox(nn::BBox{0, 0, 64, 64});
    p.mutable_meta().Set(meta_keys::kFrameNo, int64_t{i});
    out.push_back(std::move(p));
  }
  return out;
}

// --- Byte-level result canonicalization -------------------------------------

std::vector<uint8_t> SerializePatches(const PatchCollection& patches) {
  ByteBuffer buf;
  buf.PutU64(patches.size());
  for (const Patch& p : patches) p.SerializeInto(&buf);
  return buf.data();
}

std::vector<uint8_t> SerializeTuples(const std::vector<PatchTuple>& tuples) {
  ByteBuffer buf;
  buf.PutU64(tuples.size());
  for (const PatchTuple& t : tuples) {
    buf.PutU64(t.size());
    for (const Patch& p : t) p.SerializeInto(&buf);
  }
  return buf.data();
}

std::vector<uint8_t> SerializeGroups(const std::map<std::string, uint64_t>& groups) {
  ByteBuffer buf;
  buf.PutU64(groups.size());
  for (const auto& entry : groups) {
    buf.PutLengthPrefixed(Slice(entry.first));
    buf.PutU64(entry.second);
  }
  return buf.data();
}

// --- The randomized query mix -----------------------------------------------

constexpr int kNumOps = 6;

class ServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("dl_serving_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                .string();
    std::filesystem::remove_all(root_);
    auto db = Database::Open(root_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    CacheConfig cache_config;
    cache_config.budget_bytes = 32 << 20;
    // LRU admission: TinyLFU's cold-miss denials would make first-touch
    // insertion timing-dependent, which the dedup accounting below
    // (leaders == distinct panels) must not be.
    cache_config.admission = CacheAdmission::kLru;
    db_->ConfigureCaches(cache_config);
  }
  void TearDown() override {
    db_.reset();
    std::filesystem::remove_all(root_);
  }

  void RegisterViews() {
    // Past the 1024-row morsel threshold: scans, aggregates and the
    // join all plan multiple morsels and go through the scheduler.
    ASSERT_TRUE(db_->RegisterView("left", MakeMetaView(0xa11ce, 3000)).ok());
    ASSERT_TRUE(db_->RegisterView("right", MakeMetaView(0xb0b, 2400)).ok());
    ASSERT_TRUE(db_->RegisterView("panels", MakePanelView(0xd161, 12)).ok());
  }

  // Runs one op of the mix and returns its canonical bytes. `cache` is
  // the inference cache the UDF op builds its predicate against (each
  // session passes its own partition; results must not depend on it).
  std::vector<uint8_t> RunOp(int op, InferenceCache* cache) {
    switch (op % kNumOps) {
      case 0: {
        Query q(db_.get(), "left");
        q.Where(Ge(Attr(meta_keys::kScore), Lit(0.5)));
        auto r = q.Execute();
        EXPECT_TRUE(r.ok()) << r.status().ToString();
        return r.ok() ? SerializePatches(*r) : std::vector<uint8_t>{0xff};
      }
      case 1: {
        Query q(db_.get(), "left");
        q.Where(Lt(Attr("v"), Lit(int64_t{0})));
        auto r = q.Count();
        EXPECT_TRUE(r.ok()) << r.status().ToString();
        if (!r.ok()) return std::vector<uint8_t>{0xff};
        ByteBuffer buf;
        buf.PutU64(*r);
        return buf.data();
      }
      case 2: {
        Query q(db_.get(), "right");
        auto r = q.GroupCount("g");
        EXPECT_TRUE(r.ok()) << r.status().ToString();
        return r.ok() ? SerializeGroups(*r) : std::vector<uint8_t>{0xff};
      }
      case 3: {
        // Big enough combined input for the radix-partitioned core when
        // the morsel plan is parallel.
        auto left = db_->GetView("left");
        auto right = db_->GetView("right");
        EXPECT_TRUE(left.ok() && right.ok());
        auto r = HashEqualityJoin(
            (*left)->patches, (*right)->patches, "k",
            Lt(Attr(0, meta_keys::kScore), Attr(1, meta_keys::kScore)));
        EXPECT_TRUE(r.ok()) << r.status().ToString();
        return r.ok() ? SerializeTuples(*r) : std::vector<uint8_t>{0xff};
      }
      case 4: {
        Query q(db_.get(), "panels");
        q.Where(Ne(OcrTextUdf(0, db_->ocr(), cache), Lit("")));
        auto r = q.Execute();
        EXPECT_TRUE(r.ok()) << r.status().ToString();
        return r.ok() ? SerializePatches(*r) : std::vector<uint8_t>{0xff};
      }
      default: {
        Query q(db_.get(), "left");
        auto r = q.CountDistinct("k");
        EXPECT_TRUE(r.ok()) << r.status().ToString();
        if (!r.ok()) return std::vector<uint8_t>{0xff};
        ByteBuffer buf;
        buf.PutU64(*r);
        return buf.data();
      }
    }
  }

  std::string root_;
  std::unique_ptr<Database> db_;
};

// Concurrent randomized mix == solo execution, byte for byte, and the
// whole battery is deterministic under repetition.
TEST_F(ServingTest, ConcurrentMixByteIdenticalToSolo) {
  RegisterViews();

  // Solo reference for every op, computed before any concurrency.
  std::vector<std::vector<uint8_t>> reference(kNumOps);
  for (int op = 0; op < kNumOps; ++op) {
    reference[op] = RunOp(op, db_->TenantInferenceCache("ref"));
  }

  constexpr int kThreads = 6;
  constexpr int kItersPerThread = 6;
  for (int rep = 0; rep < 2; ++rep) {
    std::atomic<int> mismatches{0};
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t, rep] {
        Session session =
            db_->CreateSession("tenant" + std::to_string(t));
        Rng rng(0x5e551 + static_cast<uint64_t>(t) * 131 +
                static_cast<uint64_t>(rep));
        for (int i = 0; i < kItersPerThread; ++i) {
          const int op = static_cast<int>(rng.NextU64Below(kNumOps));
          Status st = session.Run([&]() -> Status {
            if (RunOp(op, session.inference_cache()) != reference[op]) {
              mismatches.fetch_add(1);
            }
            return Status::OK();
          });
          if (!st.ok()) failures.fetch_add(1);
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(mismatches.load(), 0) << "rep " << rep;
    EXPECT_EQ(failures.load(), 0) << "rep " << rep;
  }

  // The battery really did run task sets concurrently through the
  // scheduler (not serialized end to end).
  EXPECT_GE(MorselScheduler::Global().Stats().peak_active_sets, 2u);
}

// A long task set cannot starve a short one: the short set, submitted
// while the long one is mid-flight, finishes long before it.
TEST(MorselSchedulerTest, ShortTaskSetNotStarvedByLongOne) {
  constexpr int kLongTasks = 160;
  constexpr int kShortTasks = 8;
  const auto work = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  };

  std::atomic<bool> long_started{false};
  double long_ms = 0, short_ms = 0;
  std::thread long_thread([&] {
    const auto t0 = std::chrono::steady_clock::now();
    MorselScheduler::Global().Run(
        kLongTasks,
        [&](size_t) {
          long_started.store(true);
          work();
        },
        SchedulingContext{"long", 1});
    long_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  });
  while (!long_started.load()) std::this_thread::yield();

  const auto t0 = std::chrono::steady_clock::now();
  MorselScheduler::Global().Run(
      kShortTasks, [&](size_t) { work(); }, SchedulingContext{"short", 1});
  short_ms = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - t0)
                 .count();
  long_thread.join();

  // Under the old pool-FIFO dispatch the short set would wait for all
  // 160 long tasks (~short_ms == long_ms). Fair interleaving bounds the
  // short set near its fair share; 1/2 is a deliberately loose bound
  // that still fails the FIFO behavior by a wide margin.
  EXPECT_LT(short_ms, long_ms / 2)
      << "short=" << short_ms << "ms long=" << long_ms << "ms";

  const SchedulerStats stats = MorselScheduler::Global().Stats();
  EXPECT_GE(stats.tasks_by_tenant.at("long"), 160u);
  EXPECT_GE(stats.tasks_by_tenant.at("short"), 8u);
}

// Weights bias the interleave: with equal-size task sets racing, the
// weight-8 tenant drains first.
TEST(MorselSchedulerTest, WeightBiasesInterleaving) {
  constexpr int kTasks = 48;
  const auto work = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };

  std::atomic<bool> light_started{false};
  double light_ms = 0, heavy_ms = 0;
  std::thread light_thread([&] {
    const auto t0 = std::chrono::steady_clock::now();
    MorselScheduler::Global().Run(
        kTasks,
        [&](size_t) {
          light_started.store(true);
          work();
        },
        SchedulingContext{"light", 1});
    light_ms = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  });
  while (!light_started.load()) std::this_thread::yield();

  const auto t0 = std::chrono::steady_clock::now();
  MorselScheduler::Global().Run(
      kTasks, [&](size_t) { work(); }, SchedulingContext{"heavy", 8});
  heavy_ms = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - t0)
                 .count();
  light_thread.join();

  // Weight 8 vs 1 claims ~8 of every 9 slots while both are active, so
  // the heavy set (submitted second!) must still finish first.
  EXPECT_LT(heavy_ms, light_ms)
      << "heavy=" << heavy_ms << "ms light=" << light_ms << "ms";
}

// --- Admission control ------------------------------------------------------

TEST_F(ServingTest, SaturationReturnsTypedStatusAndRecovers) {
  ServingConfig config;
  config.max_concurrent_queries = 1;
  config.admission_wait_ms = 0;  // fail fast
  db_->ConfigureServing(config);

  Session a = db_->CreateSession("a");
  Session b = db_->CreateSession("b");

  std::atomic<bool> release{false};
  std::atomic<bool> a_running{false};
  std::thread holder([&] {
    Status st = a.Run([&]() -> Status {
      a_running.store(true);
      while (!release.load()) std::this_thread::yield();
      return Status::OK();
    });
    EXPECT_TRUE(st.ok());
  });
  while (!a_running.load()) std::this_thread::yield();

  // Pool full, zero wait: typed rejection, and the query never ran.
  bool b_ran = false;
  Status saturated = b.Run([&]() -> Status {
    b_ran = true;
    return Status::OK();
  });
  EXPECT_TRUE(saturated.IsSaturated()) << saturated.ToString();
  EXPECT_FALSE(b_ran);

  release.store(true);
  holder.join();

  // Slot freed: the same session is admitted now.
  Status ok = b.Run([]() -> Status { return Status::OK(); });
  EXPECT_TRUE(ok.ok()) << ok.ToString();

  const ServingStats stats = db_->admission_gate()->Stats();
  EXPECT_GE(stats.rejected_saturated, 1u);
  EXPECT_GE(stats.admitted, 2u);
  EXPECT_EQ(stats.in_flight, 0u);
}

TEST_F(ServingTest, AdmissionBlocksUntilSlotFrees) {
  ServingConfig config;
  config.max_concurrent_queries = 1;
  config.admission_wait_ms = 10000;
  db_->ConfigureServing(config);

  Session a = db_->CreateSession("a");
  Session b = db_->CreateSession("b");

  std::atomic<bool> a_running{false};
  std::thread holder([&] {
    Status st = a.Run([&]() -> Status {
      a_running.store(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      return Status::OK();
    });
    EXPECT_TRUE(st.ok());
  });
  while (!a_running.load()) std::this_thread::yield();

  // B queues behind A's slot and gets admitted when A finishes, well
  // inside the 10s budget.
  Status st = b.Run([]() -> Status { return Status::OK(); });
  EXPECT_TRUE(st.ok()) << st.ToString();
  holder.join();

  EXPECT_EQ(db_->admission_gate()->Stats().peak_in_flight, 1u);
}

TEST_F(ServingTest, UnlimitedGateAdmitsEverything) {
  ServingConfig config;
  config.max_concurrent_queries = 0;
  db_->ConfigureServing(config);
  Session s = db_->CreateSession("any");
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(s.Run([]() -> Status { return Status::OK(); }).ok());
  }
}

// --- In-flight inference dedup ----------------------------------------------

// K concurrent identical UDF queries cost exactly one model invocation
// per distinct panel: every miss-path inference goes through the
// singleflight table, so invocations == leaders, and leaders must equal
// the number of distinct fingerprints — not K times that.
TEST_F(ServingTest, ConcurrentIdenticalUdfQueriesRunEachInferenceOnce) {
  constexpr int kPanels = 12;
  constexpr int kThreads = 8;
  ASSERT_TRUE(
      db_->RegisterView("panels", MakePanelView(0xfade, kPanels)).ok());

  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      // Anonymous sessions: all K queries share the database cache, the
      // worst case for redundant inference without the inflight table.
      Session session = db_->CreateSession();
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      Status st = session.Run([&]() -> Status {
        Query q(db_.get(), "panels");
        q.Where(Ne(OcrTextUdf(0, db_->ocr(), session.inference_cache()),
                   Lit("")));
        auto r = q.Execute();
        return r.status();
      });
      if (!st.ok()) failures.fetch_add(1);
    });
  }
  while (ready.load() < kThreads) std::this_thread::yield();
  go.store(true);
  for (auto& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);

  const InflightStats inflight = db_->inflight_table()->Stats();
  const CacheStats cache = db_->inference_cache()->Stats();
  // Exactly one inference per distinct panel across all K queries.
  EXPECT_EQ(inflight.leaders, static_cast<uint64_t>(kPanels));
  EXPECT_EQ(inflight.failures, 0u);
  // Every one of the K*kPanels evaluations is accounted for: led the
  // flight, joined one in progress, or hit the already-published entry.
  EXPECT_EQ(inflight.leaders + inflight.joined + cache.hits,
            static_cast<uint64_t>(kThreads) * kPanels);
}

TEST_F(ServingTest, ExplainReportsSchedulingClassAndDedup) {
  RegisterViews();
  ServingConfig config;
  config.tenant_weights = {{"dash", 4}};
  db_->ConfigureServing(config);

  Session session = db_->CreateSession("dash");
  EXPECT_EQ(session.weight(), 4u);

  Query q(db_.get(), "panels");
  q.Where(Ne(OcrTextUdf(0, db_->ocr(), session.inference_cache()),
             Lit("")));
  auto plan = session.Explain(q);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->scheduling_class.find("dash"), std::string::npos);
  EXPECT_NE(plan->scheduling_class.find("weight 4"), std::string::npos);
  EXPECT_EQ(plan->inflight_dedup_hits,
            db_->inflight_table()->Stats().joined);

  // Plain Query::Explain stays serving-agnostic.
  auto bare = q.Explain();
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(bare->scheduling_class.empty());
}

// --- Per-tenant cache partitions --------------------------------------------

TEST_F(ServingTest, TenantCacheBudgetsPartitionByWeight) {
  ServingConfig config;
  config.tenant_weights = {{"big", 8}, {"small", 2}};
  db_->ConfigureServing(config);

  Session big = db_->CreateSession("big");
  Session small = db_->CreateSession("small");
  Session anon = db_->CreateSession();

  // Distinct partitions; the anonymous session uses the shared cache.
  EXPECT_NE(big.inference_cache(), small.inference_cache());
  EXPECT_EQ(anon.inference_cache(), db_->inference_cache());

  // Budgets split the shared inference budget in weight proportion.
  const uint64_t total = db_->cache_config().inference_budget();
  EXPECT_EQ(big.inference_cache()->Stats().budget_bytes, total * 8 / 10);
  EXPECT_EQ(small.inference_cache()->Stats().budget_bytes, total * 2 / 10);

  // Isolation: flooding one tenant's partition cannot evict another's
  // entries.
  const std::string key = InferenceCache::KeyFor("m", 42);
  small.inference_cache()->Put(key, InferenceValue{std::string("kept")});
  for (int i = 0; i < 1000; ++i) {
    big.inference_cache()->Put(InferenceCache::KeyFor("m", 1000 + i),
                               InferenceValue{std::string(4096, 'x')});
  }
  EXPECT_NE(small.inference_cache()->Get(key), nullptr);
}

TEST(ServingConfigTest, TenantCacheBudgetMath) {
  ServingConfig config;
  config.tenant_weights = {{"big", 8}, {"small", 1}};
  // Configured tenants split by weight over the configured sum.
  EXPECT_EQ(config.TenantCacheBudget("big", 900000), 800000u);
  EXPECT_EQ(config.TenantCacheBudget("small", 900000), 100000u);
  // Unconfigured tenants compete as weight 1 on top of the sum.
  EXPECT_EQ(config.TenantCacheBudget("other", 900000), 90000u);
  // No weights at all: the sole tenant competes only with itself.
  ServingConfig empty;
  EXPECT_EQ(empty.TenantCacheBudget("t", 500000), 500000u);
  // Zero total stays zero (cache disabled).
  EXPECT_EQ(config.TenantCacheBudget("big", 0), 0u);
  // Tiny shares clamp up to a usable floor instead of disabling.
  EXPECT_EQ(config.TenantCacheBudget("small", 9000), 4096u);
}

// The container may expose a single core; the serving battery needs
// real worker parallelism. Static-init so it lands before the global
// pool's first construction (an explicit override still wins).
const bool kForceWorkers = [] {
  setenv("DEEPLENS_NUM_THREADS", "4", /*overwrite=*/0);
  return true;
}();

}  // namespace
}  // namespace deeplens
