// Unit tests for the vectorized execution layer: batch operators must be
// byte-identical to the legacy Volcano tuple iterators on randomized
// inputs, the tuple<->batch adapters must preserve stream contents and
// error ordering, and the morsel-parallel pipeline driver must be
// deterministic (ordered merge) and equal to serial execution.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "exec/batch.h"
#include "exec/expression.h"
#include "exec/operators.h"
#include "exec/pipeline.h"

namespace deeplens {
namespace {

Patch RandomPatch(Rng* rng, PatchId id) {
  Patch p;
  p.set_id(id);
  const int frameno = static_cast<int>(rng->NextInt(0, 50));
  p.set_ref(ImgRef{"ds", frameno, kInvalidPatchId});
  p.set_bbox(nn::BBox{static_cast<int>(rng->NextInt(0, 10)),
                      static_cast<int>(rng->NextInt(0, 10)),
                      static_cast<int>(rng->NextInt(11, 30)),
                      static_cast<int>(rng->NextInt(11, 30))});
  static const char* kLabels[] = {"car", "person", "bus", "bike"};
  p.mutable_meta().Set(meta_keys::kLabel,
                       kLabels[rng->NextU64Below(4)]);
  p.mutable_meta().Set(meta_keys::kFrameNo, int64_t{frameno});
  p.mutable_meta().Set(meta_keys::kScore, rng->NextDouble());
  p.mutable_meta().Set(meta_keys::kPatchId, static_cast<int64_t>(id));
  if (rng->NextBool(0.5)) {
    std::vector<float> f(8);
    for (auto& v : f) v = rng->NextFloat();
    p.set_features(Tensor::FromVector(std::move(f)));
  }
  return p;
}

PatchCollection RandomCollection(uint64_t seed, size_t n) {
  Rng rng(seed);
  PatchCollection out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(RandomPatch(&rng, static_cast<PatchId>(i + 1)));
  }
  return out;
}

std::string BytesOfTuple(const PatchTuple& tuple) {
  ByteBuffer buf;
  for (const Patch& p : tuple) p.SerializeInto(&buf);
  const std::vector<uint8_t>& raw = buf.data();
  return std::string(raw.begin(), raw.end());
}

// PatchTuple and PatchCollection are the same underlying type, so the two
// stream flavours need distinct names: a vector of tuples serializes each
// tuple, a collection serializes each patch as a 1-tuple.
std::vector<std::string> BytesOf(const std::vector<PatchTuple>& tuples) {
  std::vector<std::string> out;
  out.reserve(tuples.size());
  for (const PatchTuple& t : tuples) out.push_back(BytesOfTuple(t));
  return out;
}

std::vector<std::string> BytesOfPatches(const PatchCollection& patches) {
  std::vector<std::string> out;
  out.reserve(patches.size());
  for (const Patch& p : patches) out.push_back(BytesOfTuple(PatchTuple{p}));
  return out;
}

ExprPtr TestPredicate(int which) {
  switch (which % 5) {
    case 0:
      return Eq(Attr("label"), Lit("car"));
    case 1:
      return Ge(Attr("score"), Lit(0.5));
    case 2:
      return And(Eq(Attr("label"), Lit("person")),
                 Lt(Attr("frameno"), Lit(int64_t{25})));
    case 3:
      // Not index-sargable: exercises the fallback conjunct path.
      return Or(Eq(Attr("label"), Lit("bus")), Gt(Attr("score"), Lit(0.9)));
    default:
      return And(Ge(Attr("frameno"), Lit(int64_t{10})),
                 And(Le(Attr("frameno"), Lit(int64_t{40})),
                     Ne(Attr("label"), Lit("bike"))));
  }
}

// --- Batch operators vs. Volcano reference ---------------------------------

TEST(BatchOperatorTest, FilterMatchesVolcanoOnRandomInputs) {
  for (int round = 0; round < 5; ++round) {
    const size_t n = 1 + (round * 997) % 3000;  // crosses batch boundaries
    PatchCollection input = RandomCollection(100 + round, n);
    ExprPtr pred = TestPredicate(round);

    auto volcano = MakeVolcanoFilter(MakeVectorSource(input), pred);
    auto expected = Collect(volcano.get());
    ASSERT_TRUE(expected.ok());

    auto batch = MakeBatchFilter(MakeBatchVectorSource(input), pred);
    auto actual = CollectBatches(batch.get());
    ASSERT_TRUE(actual.ok());

    EXPECT_EQ(BytesOf(*actual), BytesOf(*expected)) << "round " << round;
  }
}

TEST(BatchOperatorTest, MapMatchesVolcanoOnRandomInputs) {
  auto annotate = [](PatchTuple t) -> Result<PatchTuple> {
    t[0].mutable_meta().Set(
        "doubled", t[0].meta().Get("frameno").AsInt().value() * 2);
    return t;
  };
  PatchCollection input = RandomCollection(7, 2500);

  auto volcano = MakeVolcanoMap(MakeVectorSource(input), annotate);
  auto expected = Collect(volcano.get());
  ASSERT_TRUE(expected.ok());

  auto batch = MakeBatchMap(MakeBatchVectorSource(input), annotate);
  auto actual = CollectBatches(batch.get());
  ASSERT_TRUE(actual.ok());

  EXPECT_EQ(BytesOf(*actual), BytesOf(*expected));
}

TEST(BatchOperatorTest, LimitMatchesVolcanoAcrossBoundaries) {
  PatchCollection input = RandomCollection(11, 2100);
  for (size_t limit : {size_t{0}, size_t{1}, size_t{1023}, size_t{1024},
                       size_t{1025}, size_t{2100}, size_t{5000}}) {
    auto volcano = MakeVolcanoLimit(MakeVectorSource(input), limit);
    auto expected = Collect(volcano.get());
    ASSERT_TRUE(expected.ok());

    auto batch = MakeBatchLimit(MakeBatchVectorSource(input), limit);
    auto actual = CollectBatches(batch.get());
    ASSERT_TRUE(actual.ok());

    EXPECT_EQ(BytesOf(*actual), BytesOf(*expected)) << "limit " << limit;
  }
}

TEST(BatchOperatorTest, UnionMatchesVolcano) {
  PatchCollection a = RandomCollection(21, 1500);
  PatchCollection b = RandomCollection(22, 3);
  PatchCollection c;  // empty child
  PatchCollection d = RandomCollection(23, 1100);

  std::vector<PatchIteratorPtr> tuple_children;
  tuple_children.push_back(MakeVectorSource(a));
  tuple_children.push_back(MakeVectorSource(b));
  tuple_children.push_back(MakeVectorSource(c));
  tuple_children.push_back(MakeVectorSource(d));
  auto volcano = MakeVolcanoUnion(std::move(tuple_children));
  auto expected = Collect(volcano.get());
  ASSERT_TRUE(expected.ok());

  std::vector<BatchIteratorPtr> batch_children;
  batch_children.push_back(MakeBatchVectorSource(a));
  batch_children.push_back(MakeBatchVectorSource(b));
  batch_children.push_back(MakeBatchVectorSource(c));
  batch_children.push_back(MakeBatchVectorSource(d));
  auto batch = MakeBatchUnion(std::move(batch_children));
  auto actual = CollectBatches(batch.get());
  ASSERT_TRUE(actual.ok());

  EXPECT_EQ(BytesOf(*actual), BytesOf(*expected));
}

TEST(BatchOperatorTest, ProjectMatchesVolcano) {
  PatchCollection input = RandomCollection(31, 1800);
  ProjectSpec specs[3];
  specs[0].keep_pixels = false;
  specs[0].keep_features = false;
  specs[1].keep_meta_keys = {"label", "score"};
  specs[2].keep_features = false;
  specs[2].keep_meta_keys = {"frameno"};

  for (const ProjectSpec& spec : specs) {
    auto volcano = MakeVolcanoProject(MakeVectorSource(input), spec);
    auto expected = Collect(volcano.get());
    ASSERT_TRUE(expected.ok());

    auto batch = MakeBatchProject(MakeBatchVectorSource(input), spec);
    auto actual = CollectBatches(batch.get());
    ASSERT_TRUE(actual.ok());

    EXPECT_EQ(BytesOf(*actual), BytesOf(*expected));
  }
}

TEST(BatchOperatorTest, PublicTupleApiMatchesVolcanoPipeline) {
  // MakeFilter/MakeMap now run on the batch engine; a composed pipeline
  // must still be indistinguishable from the Volcano chain.
  PatchCollection input = RandomCollection(41, 2700);
  ExprPtr pred = TestPredicate(2);
  auto annotate = [](PatchTuple t) -> Result<PatchTuple> {
    t[0].mutable_meta().Set("seen", true);
    return t;
  };

  auto volcano = MakeVolcanoLimit(
      MakeVolcanoMap(MakeVolcanoFilter(MakeVectorSource(input), pred),
                     annotate),
      500);
  auto expected = Collect(volcano.get());
  ASSERT_TRUE(expected.ok());

  auto modern = MakeLimit(
      MakeMap(MakeFilter(MakeVectorSource(input), pred), annotate), 500);
  auto actual = Collect(modern.get());
  ASSERT_TRUE(actual.ok());

  EXPECT_EQ(BytesOf(*actual), BytesOf(*expected));
}

// --- Adapters ---------------------------------------------------------------

TEST(BatchAdapterTest, RoundTripPreservesStream) {
  PatchCollection input = RandomCollection(51, 2050);
  auto round_tripped = TupleToBatch(
      BatchToTuple(TupleToBatch(MakeVectorSource(input), 100)), 77);
  auto actual = CollectBatchPatches(round_tripped.get());
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(BytesOfPatches(*actual), BytesOfPatches(input));
}

TEST(BatchAdapterTest, LimitDoesNotOverPullGenerator) {
  // The batching adapter under a limit must pull exactly `limit` tuples,
  // like the Volcano limit did — not a full batch.
  int pulls = 0;
  auto gen = MakeGeneratorSource(
      [&pulls]() -> Result<std::optional<PatchTuple>> {
        ++pulls;
        Patch p;
        p.set_id(static_cast<PatchId>(pulls));
        return std::optional<PatchTuple>(PatchTuple{std::move(p)});
      });
  auto limit = MakeLimit(std::move(gen), 3);
  EXPECT_EQ(Drain(limit.get()).value(), 3u);
  EXPECT_EQ(pulls, 3);
}

TEST(BatchAdapterTest, MidStreamErrorIsDeliveredAfterBufferedTuples) {
  // A child erroring on tuple 4 must still deliver tuples 1-3 first, in
  // both the batch view and the tuple view of the adapted stream.
  int calls = 0;
  auto make_gen = [&calls]() {
    calls = 0;
    return MakeGeneratorSource(
        [&calls]() -> Result<std::optional<PatchTuple>> {
          if (++calls >= 4) return Status::IOError("stream broke");
          Patch p;
          p.set_id(static_cast<PatchId>(calls));
          return std::optional<PatchTuple>(PatchTuple{std::move(p)});
        });
  };

  auto batched = TupleToBatch(make_gen(), 64);
  auto first = batched->Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  EXPECT_EQ((*first)->size(), 3u);
  auto second = batched->Next();
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsIOError());
  // And the stream stays terminated afterwards.
  auto third = batched->Next();
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->has_value());

  auto tuple_view = BatchToTuple(TupleToBatch(make_gen(), 64));
  for (int i = 1; i <= 3; ++i) {
    auto t = tuple_view->Next();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(t->has_value());
    EXPECT_EQ((**t)[0].id(), static_cast<PatchId>(i));
  }
  auto err = tuple_view->Next();
  ASSERT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsIOError());
}

TEST(BatchAdapterTest, FilterDeliversPassingTuplesBeforePredicateError) {
  // Rows 1 and 3 pass, row 2 is filtered, row 4 makes the predicate
  // error ("flag" holds an int). Both engines must yield [1, 3] and only
  // then the error — and a limit satisfied by those tuples must make the
  // whole query succeed, exactly as with the Volcano operators.
  auto make_input = []() {
    PatchCollection out;
    for (int i = 1; i <= 4; ++i) {
      Patch p;
      p.set_id(static_cast<PatchId>(i));
      if (i == 4) {
        p.mutable_meta().Set("flag", int64_t{5});
      } else {
        p.mutable_meta().Set("flag", i != 2);
      }
      out.push_back(std::move(p));
    }
    return out;
  };
  ExprPtr pred = Attr("flag");

  for (bool volcano : {true, false}) {
    auto filter = volcano
                      ? MakeVolcanoFilter(MakeVectorSource(make_input()), pred)
                      : MakeFilter(MakeVectorSource(make_input()), pred);
    std::vector<PatchId> seen;
    Status error;
    while (true) {
      auto t = filter->Next();
      if (!t.ok()) {
        error = t.status();
        break;
      }
      if (!t->has_value()) break;
      seen.push_back((**t)[0].id());
    }
    EXPECT_EQ(seen, (std::vector<PatchId>{1, 3})) << "volcano=" << volcano;
    EXPECT_TRUE(error.IsTypeError()) << "volcano=" << volcano;
  }

  // Limit short-circuits before the poisoned row is ever a problem.
  auto limited = MakeLimit(MakeFilter(MakeVectorSource(make_input()), pred), 2);
  auto rows = CollectPatches(limited.get());
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 2u);
}

TEST(BatchAdapterTest, MapDeliversMappedTuplesBeforeError) {
  PatchCollection input = RandomCollection(55, 10);
  auto poisoned = [](PatchTuple t) -> Result<PatchTuple> {
    if (t[0].id() == 7) return Status::Internal("poisoned");
    return t;
  };
  auto map = MakeMap(MakeVectorSource(input), poisoned);
  size_t seen = 0;
  Status error;
  while (true) {
    auto t = map->Next();
    if (!t.ok()) {
      error = t.status();
      break;
    }
    if (!t->has_value()) break;
    ++seen;
  }
  EXPECT_EQ(seen, 6u);  // ids 1-6 delivered before id 7 errors
  EXPECT_EQ(error.code(), StatusCode::kInternal);
}

// --- EvalBatch / CompiledPredicate ------------------------------------------

TEST(EvalBatchTest, MatchesScalarEvalRowWise) {
  PatchCollection input = RandomCollection(61, 512);
  std::vector<PatchTuple> rows;
  for (const Patch& p : input) rows.push_back(PatchTuple{p});

  for (int which = 0; which < 5; ++which) {
    ExprPtr pred = TestPredicate(which);
    std::vector<MetaValue> batch_out(rows.size());
    ASSERT_TRUE(
        pred->EvalBatch(rows.data(), rows.size(), batch_out.data()).ok());
    std::vector<uint8_t> bool_out(rows.size());
    ASSERT_TRUE(
        pred->EvalBoolBatch(rows.data(), rows.size(), bool_out.data()).ok());

    for (size_t i = 0; i < rows.size(); ++i) {
      auto scalar = pred->Eval(rows[i]);
      ASSERT_TRUE(scalar.ok());
      EXPECT_EQ(batch_out[i].Compare(*scalar), 0) << "row " << i;
      auto scalar_bool = pred->EvalBool(rows[i]);
      ASSERT_TRUE(scalar_bool.ok());
      EXPECT_EQ(bool_out[i] != 0, *scalar_bool) << "row " << i;
    }
  }
}

TEST(CompiledPredicateTest, MatchesEvalBoolOnTuplesAndPatches) {
  PatchCollection input = RandomCollection(71, 800);
  std::vector<PatchTuple> rows;
  for (const Patch& p : input) rows.push_back(PatchTuple{p});

  for (int which = 0; which < 5; ++which) {
    ExprPtr pred = TestPredicate(which);
    const CompiledPredicate compiled(pred);

    std::vector<uint8_t> on_tuples(rows.size());
    ASSERT_TRUE(
        compiled.EvalTupleRows(rows.data(), rows.size(), on_tuples.data())
            .ok());
    std::vector<uint8_t> on_patches(input.size());
    ASSERT_TRUE(
        compiled.EvalPatchRows(input.data(), input.size(), on_patches.data())
            .ok());

    for (size_t i = 0; i < rows.size(); ++i) {
      auto scalar = pred->EvalBool(rows[i]);
      ASSERT_TRUE(scalar.ok());
      EXPECT_EQ(on_tuples[i] != 0, *scalar) << "row " << i;
      EXPECT_EQ(on_patches[i] != 0, *scalar) << "row " << i;
    }
  }
}

TEST(CompiledPredicateTest, NullPredicatePassesEverything) {
  const CompiledPredicate compiled;
  EXPECT_TRUE(compiled.always_true());
  Patch p;
  EXPECT_TRUE(compiled.EvalOnePatch(p).value());
}

TEST(CompiledPredicateTest, EmptyConjunctListSelectsEveryRow) {
  // A null expression compiles to the empty conjunct list; row-wise
  // evaluation must select everything on both entry points, including
  // over an empty input.
  const CompiledPredicate compiled(nullptr);
  ASSERT_TRUE(compiled.always_true());

  PatchCollection input = RandomCollection(111, 300);
  std::vector<PatchTuple> rows;
  for (const Patch& p : input) rows.push_back(PatchTuple{p});
  std::vector<uint8_t> selection(rows.size(), 0);
  ASSERT_TRUE(
      compiled.EvalTupleRows(rows.data(), rows.size(), selection.data()).ok());
  EXPECT_EQ(std::count(selection.begin(), selection.end(), 1),
            static_cast<ptrdiff_t>(rows.size()));
  std::fill(selection.begin(), selection.end(), 0);
  ASSERT_TRUE(
      compiled.EvalPatchRows(input.data(), input.size(), selection.data())
          .ok());
  EXPECT_EQ(std::count(selection.begin(), selection.end(), 1),
            static_cast<ptrdiff_t>(input.size()));
  EXPECT_TRUE(compiled.EvalTupleRows(nullptr, 0, nullptr).ok());
}

TEST(CompiledPredicateTest, AllFalseBatchCompactsToEmpty) {
  PatchCollection input = RandomCollection(113, 2048);
  const ExprPtr never = Lt(Attr("score"), Lit(-5.0));  // scores are in [0,1)
  const CompiledPredicate compiled(never);
  std::vector<uint8_t> selection(input.size(), 1);
  ASSERT_TRUE(
      compiled.EvalPatchRows(input.data(), input.size(), selection.data())
          .ok());
  EXPECT_EQ(std::count(selection.begin(), selection.end(), 0),
            static_cast<ptrdiff_t>(input.size()));

  // End-to-end: the batch filter must drain to an empty stream, and the
  // morsel driver must report zero output rows.
  auto filtered = MakeBatchFilter(MakeBatchVectorSource(input), never);
  auto drained = CollectBatches(filtered.get());
  ASSERT_TRUE(drained.ok());
  EXPECT_TRUE(drained->empty());
  PipelineStats stats;
  auto selected = ParallelSelect(input, never, {}, &stats);
  ASSERT_TRUE(selected.ok());
  EXPECT_TRUE(selected->empty());
  EXPECT_EQ(stats.output_rows, 0u);
}

TEST(CompiledPredicateTest, BatchSizeOneMatchesDefaultGeometry) {
  // Forcing 1-tuple batches through the adapter and 1-row morsels through
  // the driver must not change any result.
  PatchCollection input = RandomCollection(115, 257);
  for (int which = 0; which < 5; ++which) {
    ExprPtr pred = TestPredicate(which);
    auto reference = MakeVolcanoFilter(MakeVectorSource(input), pred);
    auto expected = CollectPatches(reference.get());
    ASSERT_TRUE(expected.ok());

    auto one_by_one = MakeBatchFilter(
        TupleToBatch(MakeVectorSource(input), /*batch_size=*/1), pred);
    auto actual = CollectBatchPatches(one_by_one.get());
    ASSERT_TRUE(actual.ok());
    EXPECT_EQ(BytesOfPatches(*actual), BytesOfPatches(*expected))
        << "pred " << which;

    MorselOptions options;
    options.batch_size = 1;
    options.morsel_size = 1;
    auto parallel = ParallelSelect(input, pred, options);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(BytesOfPatches(*parallel), BytesOfPatches(*expected))
        << "pred " << which;
  }
}

TEST(CompiledPredicateTest, LastPartialBatchIsFullyEvaluated) {
  // Input sizes straddling the batch boundary: the final short batch must
  // be evaluated row-for-row like every full batch before it.
  for (size_t n : {kDefaultBatchSize - 1, kDefaultBatchSize,
                   kDefaultBatchSize + 1, 2 * kDefaultBatchSize + 17}) {
    PatchCollection input = RandomCollection(117, n);
    // Make the very last row the only survivor so a dropped tail is loud.
    ExprPtr pred = Eq(Attr("pid"), Lit(static_cast<int64_t>(n)));
    auto filtered = MakeBatchFilter(MakeBatchVectorSource(input), pred);
    auto out = CollectBatchPatches(filtered.get());
    ASSERT_TRUE(out.ok());
    ASSERT_EQ(out->size(), 1u) << "n " << n;
    EXPECT_EQ((*out)[0].id(), static_cast<PatchId>(n)) << "n " << n;

    auto parallel = ParallelSelect(input, pred);
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(parallel->size(), 1u) << "n " << n;
    EXPECT_EQ((*parallel)[0].id(), static_cast<PatchId>(n)) << "n " << n;
  }
}

// --- Morsel pipeline --------------------------------------------------------

TEST(BatchPipelineTest, ParallelRunMatchesSerialAndVolcano) {
  PatchCollection input = RandomCollection(81, 10000);
  ExprPtr pred = TestPredicate(0);
  auto annotate = [](PatchTuple t) -> Result<PatchTuple> {
    t[0].mutable_meta().Set(
        "flag", t[0].meta().Get("frameno").AsInt().value() + 1);
    return t;
  };

  auto volcano = MakeVolcanoMap(
      MakeVolcanoFilter(MakeVectorSource(input), pred), annotate);
  auto expected = CollectPatches(volcano.get());
  ASSERT_TRUE(expected.ok());

  BatchPipeline pipeline;
  pipeline.Filter(pred).Map(annotate);

  // Serial (forced single thread).
  MorselOptions serial;
  serial.num_threads = 1;
  auto serial_out = pipeline.RunOnPatches(input, serial);
  ASSERT_TRUE(serial_out.ok());
  EXPECT_EQ(BytesOfPatches(*serial_out), BytesOfPatches(*expected));

  // Parallel, multiple morsel geometries: ordered merge must make every
  // run identical to the reference regardless of scheduling.
  for (size_t morsel_size : {size_t{0}, size_t{128}, size_t{1024},
                             size_t{4096}, size_t{100000}}) {
    MorselOptions options;
    options.morsel_size = morsel_size;
    PipelineStats stats;
    auto out = pipeline.RunOnPatches(input, options, &stats);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(BytesOfPatches(*out), BytesOfPatches(*expected))
        << "morsel_size " << morsel_size;
    EXPECT_EQ(stats.input_rows, input.size());
    EXPECT_EQ(stats.output_rows, expected->size());
  }
}

TEST(BatchPipelineTest, RepeatedParallelRunsAreDeterministic) {
  PatchCollection input = RandomCollection(91, 8000);
  BatchPipeline pipeline;
  pipeline.Filter(TestPredicate(4));

  auto first = pipeline.RunOnPatches(input);
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 4; ++i) {
    auto again = pipeline.RunOnPatches(input);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(BytesOfPatches(*again), BytesOfPatches(*first)) << "run " << i;
  }
}

TEST(BatchPipelineTest, BindComposesSameResultAsRun) {
  PatchCollection input = RandomCollection(95, 3000);
  ProjectSpec spec;
  spec.keep_meta_keys = {"label"};
  BatchPipeline pipeline;
  pipeline.Filter(TestPredicate(1)).Project(spec);

  auto run_out = pipeline.RunOnPatches(input);
  ASSERT_TRUE(run_out.ok());

  auto bound = pipeline.Bind(MakeBatchVectorSource(input));
  auto bind_out = CollectBatchPatches(bound.get());
  ASSERT_TRUE(bind_out.ok());

  EXPECT_EQ(BytesOfPatches(*bind_out), BytesOfPatches(*run_out));
}

TEST(BatchPipelineTest, MapErrorsPropagate) {
  PatchCollection input = RandomCollection(97, 5000);
  BatchPipeline pipeline;
  pipeline.Map([](PatchTuple t) -> Result<PatchTuple> {
    if (t[0].id() == 4321) return Status::Internal("poisoned tuple");
    return t;
  });
  auto out = pipeline.RunOnPatches(input);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInternal);
}

TEST(ParallelSelectTest, MatchesSequentialFilter) {
  PatchCollection input = RandomCollection(99, 6000);
  for (int which = 0; which < 5; ++which) {
    ExprPtr pred = TestPredicate(which);
    auto volcano = MakeVolcanoFilter(MakeVectorSource(input), pred);
    auto expected = CollectPatches(volcano.get());
    ASSERT_TRUE(expected.ok());

    auto actual = ParallelSelect(input, pred);
    ASSERT_TRUE(actual.ok());
    EXPECT_EQ(BytesOfPatches(*actual), BytesOfPatches(*expected)) << "pred " << which;
  }
  // Null predicate: identity copy.
  auto all = ParallelSelect(input, nullptr);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(BytesOfPatches(*all), BytesOfPatches(input));
}

}  // namespace
}  // namespace deeplens
