// Cost-based UDF optimizer tests: conjunct reordering must never change
// results (differential against the unoptimized evaluator), plan
// memoization must hit/miss/invalidate on the right events, and proxy
// cascades must account for their accuracy honestly. Labeled `parallel`
// in CMake so TSan exercises the shared cost-model/plan-cache counters
// under the morsel driver.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "core/cost_model.h"
#include "core/database.h"
#include "core/planner.h"
#include "core/query.h"
#include "exec/nn_udf.h"
#include "exec/pipeline.h"
#include "sim/accuracy.h"
#include "sim/scene.h"

namespace deeplens {
namespace {

Image DigitPanel(int digit) {
  Image panel(30, 30, 3);
  for (auto& b : panel.bytes()) b = 25;
  sim::DrawDigits(&panel, nn::BBox{0, 0, 30, 30}, std::to_string(digit));
  return panel;
}

Image NoisePanel(Rng* rng) {
  Image panel(30, 30, 3);
  for (auto& b : panel.bytes()) {
    b = static_cast<uint8_t>(rng->NextU64Below(40));
  }
  return panel;
}

// Mixed view: digit panels (OCR finds text), noise panels (no legible
// text, but some ink above threshold), blank panels (inkless — the OCR
// proxy's confident-reject case), and a few pixel-less rows (UDF null).
PatchCollection MixedView(Rng* rng, int n) {
  PatchCollection patches;
  patches.reserve(n);
  for (int i = 0; i < n; ++i) {
    Patch p;
    p.set_id(static_cast<PatchId>(i + 1));
    p.set_ref(ImgRef{"opt", i, kInvalidPatchId});
    p.set_bbox(nn::BBox{0, 10, 30, 10 + 10 + static_cast<int>(
                                                 rng->NextU64Below(60))});
    const uint64_t kind = rng->NextU64Below(100);
    if (kind < 10) {
      // pixel-less
    } else if (kind < 45) {
      p.set_pixels(DigitPanel(static_cast<int>(rng->NextU64Below(10))));
    } else if (kind < 70) {
      p.set_pixels(NoisePanel(rng));
    } else {
      Image blank(30, 30, 3);
      for (auto& b : blank.bytes()) b = 20;
      p.set_pixels(blank);
    }
    p.mutable_meta().Set(meta_keys::kFrameNo, int64_t{i});
    p.mutable_meta().Set("bucket",
                         static_cast<int64_t>(rng->NextU64Below(4)));
    patches.push_back(std::move(p));
  }
  return patches;
}

std::vector<uint8_t> SerializeAll(const PatchCollection& patches) {
  ByteBuffer buf;
  buf.PutU64(patches.size());
  for (const Patch& p : patches) p.SerializeInto(&buf);
  return buf.data();
}

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    unsetenv("DEEPLENS_CASCADE_THRESHOLD");
    unsetenv("DEEPLENS_PLAN_CACHE_ENTRIES");
    CostModel::Global()->Clear();
    Planner::ResetPlanCacheForTest();
    root_ = (std::filesystem::temp_directory_path() /
             ("dl_optimizer_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                .string();
    std::filesystem::remove_all(root_);
    auto db = Database::Open(root_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    CacheConfig config;
    config.budget_bytes = 16 << 20;
    db_->ConfigureCaches(config);
  }
  void TearDown() override {
    db_.reset();
    std::filesystem::remove_all(root_);
    unsetenv("DEEPLENS_CASCADE_THRESHOLD");
    unsetenv("DEEPLENS_PLAN_CACHE_ENTRIES");
    CostModel::Global()->Clear();
    Planner::ResetPlanCacheForTest();
  }

  std::string root_;
  std::unique_ptr<Database> db_;
};

// --- Reordering: results must be byte-identical ---------------------------

TEST_F(OptimizerTest, RandomizedDifferentialAgainstUnoptimizedEvaluator) {
  // Random predicates over a hand-built view (version 0: no plan cache in
  // the loop); the optimized ExecuteScan must return byte-identical rows
  // to a plain ordered ParallelSelect of the predicate as written — on
  // cold cost profiles and on profiles warmed by the earlier iterations.
  Rng rng(0x0517);
  for (int round = 0; round < 12; ++round) {
    Rng view_rng(1000 + static_cast<uint64_t>(round));
    ViewCache view;
    view.patches = MixedView(&view_rng, 24);

    std::vector<ExprPtr> pool;
    pool.push_back(Eq(Attr("bucket"),
                      Lit(static_cast<int64_t>(rng.NextU64Below(4)))));
    pool.push_back(Lt(Attr(meta_keys::kFrameNo),
                      Lit(static_cast<int64_t>(4 + rng.NextU64Below(20)))));
    pool.push_back(
        Eq(OcrTextUdf(0, db_->ocr(), db_->inference_cache()),
           Lit(std::to_string(rng.NextU64Below(10)))));
    pool.push_back(Gt(DepthUdf(0, db_->depth_model(), 240),
                      Lit(2.0 + static_cast<double>(rng.NextU64Below(40)))));

    // 2-4 random conjuncts, any order, duplicates allowed.
    ExprPtr pred;
    const size_t n = 2 + rng.NextU64Below(3);
    for (size_t i = 0; i < n; ++i) {
      ExprPtr c = pool[rng.NextU64Below(pool.size())];
      pred = pred ? And(pred, c) : c;
    }

    auto oracle = ParallelSelect(view.patches, pred);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    PlanExplanation plan;
    auto optimized = Planner::ExecuteScan(view, pred, &plan);
    ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
    EXPECT_EQ(SerializeAll(*optimized), SerializeAll(*oracle))
        << "round " << round << ": " << plan.description;
    EXPECT_FALSE(plan.cascade.used);  // threshold defaults to 1.0
  }
}

TEST_F(OptimizerTest, DeterministicUnderRepetition) {
  // Selectivity observations accumulate between runs and may legally flip
  // the executed order — the result bytes must not move.
  Rng view_rng(7);
  ViewCache view;
  view.patches = MixedView(&view_rng, 30);
  ExprPtr pred =
      And(Eq(OcrTextUdf(0, db_->ocr(), db_->inference_cache()), Lit("3")),
          Lt(Attr(meta_keys::kFrameNo), Lit(int64_t{25})));
  std::vector<uint8_t> first;
  for (int i = 0; i < 3; ++i) {
    auto got = Planner::ExecuteScan(view, pred, nullptr);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    if (i == 0) {
      first = SerializeAll(*got);
    } else {
      EXPECT_EQ(SerializeAll(*got), first) << "run " << i;
    }
  }
}

TEST_F(OptimizerTest, ExpensiveUdfWrittenFirstRunsLast) {
  // Written expensive-first: the uncached OCR conjunct costs ~1ms/row by
  // the cold-start default while the attr comparison costs ~0.1us, so the
  // executed order must flip them — and Explain() must say so, with the
  // UDF list reflecting the *executed* order.
  Rng view_rng(11);
  ViewCache view;
  view.patches = MixedView(&view_rng, 10);
  ExprPtr pred = And(Eq(OcrTextUdf(0, db_->ocr()), Lit("7")),
                     Eq(Attr("bucket"), Lit(int64_t{1})));
  PlanExplanation plan = Planner::PlanScan(view, pred);
  EXPECT_TRUE(plan.reordered);
  ASSERT_EQ(plan.conjunct_costs.size(), 2u);
  EXPECT_TRUE(plan.conjunct_costs[0].sargable);
  EXPECT_TRUE(plan.conjunct_costs[0].udfs.empty());
  EXPECT_EQ(plan.conjunct_costs[0].source_index, 1u);
  ASSERT_EQ(plan.conjunct_costs[1].udfs.size(), 1u);
  EXPECT_EQ(plan.conjunct_costs[1].udfs[0], model_names::kOcr);
  EXPECT_GT(plan.conjunct_costs[1].cost_ms,
            plan.conjunct_costs[0].cost_ms);
  // The plan-wide UDF annotation reflects the executed predicate.
  ASSERT_EQ(plan.udfs.size(), 1u);
  EXPECT_EQ(plan.udfs[0].model, model_names::kOcr);
  EXPECT_NE(plan.description.find("reordered"), std::string::npos);
  EXPECT_NE(plan.description.find("conjunct costs"), std::string::npos);
}

TEST_F(OptimizerTest, ObservedRuntimesOutrankColdDefaults) {
  // Feed the cost model hand-made runtime profiles: make the depth model
  // look 100x cheaper than OCR. A two-UDF predicate must then run depth
  // first regardless of written order.
  CostModel* cm = CostModel::Global();
  for (int i = 0; i < 64; ++i) {
    cm->RecordUdfEval(model_names::kOcr, /*cache_hit=*/false, 10.0);
    cm->RecordUdfEval(model_names::kDepth, /*cache_hit=*/false, 0.1);
  }
  Rng view_rng(13);
  ViewCache view;
  view.patches = MixedView(&view_rng, 8);
  ExprPtr pred = And(Ne(OcrTextUdf(0, db_->ocr()), Lit("")),
                     Gt(DepthUdf(0, db_->depth_model(), 240), Lit(5.0)));
  PlanExplanation plan = Planner::PlanScan(view, pred);
  ASSERT_EQ(plan.conjunct_costs.size(), 2u);
  ASSERT_EQ(plan.conjunct_costs[0].udfs.size(), 1u);
  EXPECT_EQ(plan.conjunct_costs[0].udfs[0], model_names::kDepth);
  EXPECT_TRUE(plan.reordered);
}

// --- Plan memoization -----------------------------------------------------

TEST_F(OptimizerTest, PlanCacheHitsOnRepeatMissesOnViewSwap) {
  Rng view_rng(17);
  ASSERT_TRUE(db_->RegisterView("opt", MixedView(&view_rng, 16)).ok());
  const auto base = Planner::GetPlanCacheStats();

  Query q1(db_.get(), "opt");
  q1.Where(Eq(Attr("bucket"), Lit(int64_t{2})));
  auto plan1 = q1.Explain();
  ASSERT_TRUE(plan1.ok());
  EXPECT_FALSE(plan1->plan_cache_hit);

  Query q2(db_.get(), "opt");
  q2.Where(Eq(Attr("bucket"), Lit(int64_t{3})));  // same shape, new literal
  auto plan2 = q2.Explain();
  ASSERT_TRUE(plan2.ok());
  EXPECT_TRUE(plan2->plan_cache_hit);
  EXPECT_NE(plan2->description.find("plan cache hit"), std::string::npos);

  auto after = Planner::GetPlanCacheStats();
  EXPECT_EQ(after.hits, base.hits + 1);
  EXPECT_EQ(after.misses, base.misses + 1);

  // Re-registering the view bumps its version: same shape must re-plan.
  Rng swap_rng(18);
  ASSERT_TRUE(db_->RegisterView("opt", MixedView(&swap_rng, 16)).ok());
  auto plan3 = Query(db_.get(), "opt")
                   .Where(Eq(Attr("bucket"), Lit(int64_t{2})))
                   .Explain();
  ASSERT_TRUE(plan3.ok());
  EXPECT_FALSE(plan3->plan_cache_hit);
}

TEST_F(OptimizerTest, HandBuiltViewsAreNeverMemoized) {
  Rng view_rng(19);
  ViewCache view;  // version 0
  view.patches = MixedView(&view_rng, 8);
  const auto base = Planner::GetPlanCacheStats();
  ExprPtr pred = Eq(Attr("bucket"), Lit(int64_t{0}));
  (void)Planner::PlanScan(view, pred);
  (void)Planner::PlanScan(view, pred);
  const auto after = Planner::GetPlanCacheStats();
  EXPECT_EQ(after.hits, base.hits);
  EXPECT_EQ(after.misses, base.misses);
}

TEST_F(OptimizerTest, CostDriftInvalidatesMemoizedPlan) {
  Rng view_rng(23);
  ASSERT_TRUE(db_->RegisterView("opt", MixedView(&view_rng, 12)).ok());
  ExprPtr pred =
      And(Gt(DepthUdf(0, db_->depth_model(), 240), Lit(4.0)),
          Eq(Attr("bucket"), Lit(int64_t{1})));
  Query q(db_.get(), "opt");
  q.Where(pred);
  ASSERT_TRUE(q.Explain().ok());  // memoize (cold defaults snapshot ~1ms)

  // Shift the depth model's observed runtime far beyond the 2x drift
  // band: the memoized break-even no longer holds.
  for (int i = 0; i < 128; ++i) {
    CostModel::Global()->RecordUdfEval(model_names::kDepth,
                                       /*cache_hit=*/false, 50.0);
  }
  const auto before = Planner::GetPlanCacheStats();
  auto plan = Query(db_.get(), "opt").Where(pred).Explain();
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->plan_cache_hit);
  const auto after = Planner::GetPlanCacheStats();
  EXPECT_EQ(after.invalidations, before.invalidations + 1);
}

TEST_F(OptimizerTest, PlanCacheDisabledByKnob) {
  setenv("DEEPLENS_PLAN_CACHE_ENTRIES", "0", 1);
  Rng view_rng(29);
  ASSERT_TRUE(db_->RegisterView("opt", MixedView(&view_rng, 8)).ok());
  const auto base = Planner::GetPlanCacheStats();
  for (int i = 0; i < 2; ++i) {
    auto plan = Query(db_.get(), "opt")
                    .Where(Eq(Attr("bucket"), Lit(int64_t{1})))
                    .Explain();
    ASSERT_TRUE(plan.ok());
    EXPECT_FALSE(plan->plan_cache_hit);
  }
  const auto after = Planner::GetPlanCacheStats();
  EXPECT_EQ(after.hits, base.hits);
  EXPECT_EQ(after.entries, base.entries);
}

// --- Proxy cascades -------------------------------------------------------

TEST_F(OptimizerTest, CascadeOffAtThresholdOneMatchesExactResults) {
  // threshold 1.0 (explicit) must behave exactly like unset: no cascade,
  // byte-identical rows.
  Rng view_rng(31);
  ViewCache view;
  view.patches = MixedView(&view_rng, 24);
  ExprPtr pred = Ne(OcrTextUdf(0, db_->ocr(), db_->inference_cache()),
                    Lit(""));
  auto baseline = ParallelSelect(view.patches, pred);
  ASSERT_TRUE(baseline.ok());
  setenv("DEEPLENS_CASCADE_THRESHOLD", "1.0", 1);
  PlanExplanation plan;
  auto got = Planner::ExecuteScan(view, pred, &plan);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(plan.cascade.used);
  EXPECT_EQ(SerializeAll(*got), SerializeAll(*baseline));
}

TEST_F(OptimizerTest, CascadeSkipsInklessPanelsAndAccountsForIt) {
  setenv("DEEPLENS_CASCADE_THRESHOLD", "0.3", 1);
  Rng view_rng(37);
  ViewCache view;
  view.patches = MixedView(&view_rng, 40);
  // Eq(ocr, "7"): on inkless panels the proxy estimates "" with 0.95
  // confidence — a confident reject the full model would agree with, so
  // the cascade is exact on this workload.
  ExprPtr pred = Eq(OcrTextUdf(0, db_->ocr(), db_->inference_cache()),
                    Lit("7"));
  auto oracle = ParallelSelect(view.patches, pred);
  ASSERT_TRUE(oracle.ok());
  // The oracle pass profiled the (fast, simulated) OCR model; forget those
  // observations so the plan costs the conjunct at the cold default, which
  // is what a freshly attached expensive model looks like.
  CostModel::Global()->Clear();
  PlanExplanation plan;
  auto got = Planner::ExecuteScan(view, pred, &plan);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(SerializeAll(*got), SerializeAll(*oracle));
  EXPECT_TRUE(plan.cascade.used);
  EXPECT_EQ(plan.cascade.threshold, 0.3);
  EXPECT_GT(plan.cascade.proxy_evals, 0u);
  EXPECT_GT(plan.cascade.proxy_skips, 0u);
  EXPECT_GT(plan.cascade.full_evals, 0u);
  // Precision is 1.0 by construction (the proxy only rejects) and the
  // audit slice found no disagreement on this workload.
  EXPECT_EQ(plan.cascade.est_precision, 1.0);
  EXPECT_EQ(plan.cascade.audit_overturns, 0u);
  EXPECT_EQ(plan.cascade.est_recall, 1.0);
  EXPECT_NE(plan.description.find("proxy cascade"), std::string::npos);
}

TEST_F(OptimizerTest, CascadeAccuracyEstimateScalesOverturns) {
  // The accuracy estimator itself: 2 overturns in a 10-row audit slice
  // over 100 skips extrapolates to 20 lost matches.
  const auto pr = sim::EstimateCascadeAccuracy(/*passes=*/80, /*skips=*/100,
                                               /*audits=*/10,
                                               /*audit_overturns=*/2);
  EXPECT_EQ(pr.tp, 80);
  EXPECT_EQ(pr.fp, 0);
  EXPECT_EQ(pr.fn, 20);
  EXPECT_EQ(pr.precision(), 1.0);
  EXPECT_NEAR(pr.recall(), 0.8, 1e-9);
  // No audits → conservatively lossless.
  EXPECT_EQ(sim::EstimateCascadeAccuracy(5, 50, 0, 0).fn, 0);
}

// --- Cost model plumbing --------------------------------------------------

TEST_F(OptimizerTest, UdfEvalsFeedRuntimeProfiles) {
  Rng view_rng(41);
  ViewCache view;
  view.patches = MixedView(&view_rng, 10);
  ExprPtr pred = Ne(OcrTextUdf(0, db_->ocr(), db_->inference_cache()),
                    Lit(""));
  ASSERT_TRUE(Planner::ExecuteScan(view, pred, nullptr).ok());
  const auto profile = CostModel::Global()->UdfProfile(model_names::kOcr);
  ASSERT_TRUE(profile.has_value());
  EXPECT_GT(profile->miss_samples, 0u);
  EXPECT_GT(profile->miss_ms, 0.0);
  // Second run: the warm cache turns evaluations into hits.
  ASSERT_TRUE(Planner::ExecuteScan(view, pred, nullptr).ok());
  const auto warm = CostModel::Global()->UdfProfile(model_names::kOcr);
  ASSERT_TRUE(warm.has_value());
  EXPECT_GT(warm->hit_samples, 0u);
}

TEST_F(OptimizerTest, SelectivityObservationsSharpenEstimates) {
  Rng view_rng(43);
  ViewCache view;
  view.patches = MixedView(&view_rng, 64);
  // "bucket == 0" passes ~1/4 of rows; after one observed scan the
  // estimate must beat the 0.1 equality prior.
  ExprPtr pred = Eq(Attr("bucket"), Lit(int64_t{0}));
  ASSERT_TRUE(Planner::ExecuteScan(view, pred, nullptr).ok());
  const uint64_t fp = ConjunctShapeFingerprint(pred);
  const double sel = CostModel::Global()->Selectivity(fp, /*fallback=*/-1.0);
  ASSERT_NE(sel, -1.0) << "no observation recorded";
  EXPECT_GT(sel, 0.05);
  EXPECT_LT(sel, 0.6);
}

}  // namespace
}  // namespace deeplens
