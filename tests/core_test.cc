// Unit tests for core/: MetaValue/MetaDict, Patch serialization, the type
// system, the Database facade (views, indexes, ingest), the Query builder,
// and the planner's access-path / join-strategy decisions.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/benchmark_queries.h"
#include "core/database.h"
#include "core/planner.h"
#include "core/query.h"

namespace deeplens {
namespace {

TEST(MetaValueTest, TypesAndAccessors) {
  EXPECT_EQ(MetaValue().type(), ValueType::kNull);
  EXPECT_EQ(MetaValue(5).type(), ValueType::kInt);
  EXPECT_EQ(MetaValue(2.5).type(), ValueType::kFloat);
  EXPECT_EQ(MetaValue("s").type(), ValueType::kString);
  EXPECT_EQ(MetaValue(true).type(), ValueType::kBool);
  EXPECT_EQ(MetaValue(int64_t{7}).AsInt().value(), 7);
  EXPECT_TRUE(MetaValue(7).AsString().status().IsTypeError());
  EXPECT_DOUBLE_EQ(MetaValue(7).AsNumeric().value(), 7.0);
}

TEST(MetaValueTest, ComparisonTotalOrder) {
  EXPECT_LT(MetaValue(1).Compare(MetaValue(2)), 0);
  EXPECT_EQ(MetaValue(2).Compare(MetaValue(2.0)), 0);  // numeric coercion
  EXPECT_GT(MetaValue(2.5).Compare(MetaValue(2)), 0);
  EXPECT_LT(MetaValue("a").Compare(MetaValue("b")), 0);
  EXPECT_EQ(MetaValue("x").Compare(MetaValue("x")), 0);
  EXPECT_LT(MetaValue(false).Compare(MetaValue(true)), 0);
  // Cross-type: ordered by type tag, deterministic.
  EXPECT_NE(MetaValue(1).Compare(MetaValue("1")), 0);
}

TEST(MetaValueTest, IndexKeysPreserveOrder) {
  EXPECT_LT(MetaValue(-5).ToIndexKey(), MetaValue(3).ToIndexKey());
  EXPECT_LT(MetaValue(3).ToIndexKey(), MetaValue(3.5).ToIndexKey());
  EXPECT_LT(MetaValue("abc").ToIndexKey(), MetaValue("abd").ToIndexKey());
  // Ints and floats interleave in one numeric key space.
  EXPECT_EQ(MetaValue(2).ToIndexKey(), MetaValue(2.0).ToIndexKey());
}

TEST(MetaValueTest, SerializationRoundTrip) {
  for (const MetaValue& v :
       {MetaValue(), MetaValue(-42), MetaValue(3.75), MetaValue("hello"),
        MetaValue(true)}) {
    ByteBuffer buf;
    v.SerializeInto(&buf);
    ByteReader reader(buf.AsSlice());
    auto back = MetaValue::Deserialize(&reader);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->Compare(v), 0);
    EXPECT_EQ(back->type(), v.type());
  }
}

TEST(MetaDictTest, SetGetSerialize) {
  MetaDict dict;
  dict.Set("a", 1);
  dict.Set("b", "two");
  dict.Set("a", 10);  // overwrite
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Get("a").AsInt().value(), 10);
  EXPECT_TRUE(dict.Get("missing").is_null());
  ByteBuffer buf;
  dict.SerializeInto(&buf);
  ByteReader reader(buf.AsSlice());
  auto back = MetaDict::Deserialize(&reader);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Get("b").ToDisplayString(), "'two'");
}

TEST(PatchTest, SerializationRoundTripFull) {
  Patch p;
  p.set_id(77);
  p.set_ref(ImgRef{"traffic", 123, 55});
  p.set_bbox(nn::BBox{1, 2, 30, 40});
  p.mutable_meta().Set("label", "car");
  p.mutable_meta().Set("score", 0.87);
  Image pixels(8, 6, 3);
  pixels.At(3, 3, 1) = 200;
  p.set_pixels(pixels);
  p.set_features(Tensor::FromVector({1.5f, -2.5f, 3.5f}));

  ByteBuffer buf;
  p.SerializeInto(&buf);
  ByteReader reader(buf.AsSlice());
  auto back = Patch::Deserialize(&reader);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->id(), 77u);
  EXPECT_EQ(back->ref().dataset, "traffic");
  EXPECT_EQ(back->ref().frameno, 123);
  EXPECT_EQ(back->ref().parent, 55u);
  EXPECT_EQ(back->bbox().x1, 30);
  EXPECT_EQ(*back->meta().Get("label").AsString().value(), "car");
  EXPECT_EQ(back->pixels().At(3, 3, 1), 200);
  EXPECT_FLOAT_EQ(back->features()[1], -2.5f);
}

TEST(PatchTest, SerializationWithoutPayloads) {
  Patch p;
  p.set_id(1);
  ByteBuffer buf;
  p.SerializeInto(&buf);
  ByteReader reader(buf.AsSlice());
  auto back = Patch::Deserialize(&reader);
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back->has_pixels());
  EXPECT_FALSE(back->has_features());
}

TEST(SchemaTest, ConsumerValidation) {
  PatchSchema producer;
  producer.AddAttribute("label", ValueType::kString)
      .AddAttribute("score", ValueType::kFloat);
  PatchSchema consumer;
  consumer.AddAttribute("label", ValueType::kString);
  EXPECT_TRUE(producer.ValidateConsumer(consumer).ok());
  consumer.AddAttribute("depth", ValueType::kFloat);
  EXPECT_TRUE(producer.ValidateConsumer(consumer).IsTypeError());
}

TEST(SchemaTest, ResolutionConstraint) {
  PatchSchema producer;
  producer.SetResolution(64, 64);
  PatchSchema consumer;
  consumer.SetResolution(32, 32);
  EXPECT_TRUE(producer.ValidateConsumer(consumer).IsTypeError());
  consumer.SetResolution(64, 64);
  EXPECT_TRUE(producer.ValidateConsumer(consumer).ok());
}

TEST(SchemaTest, JoinMergesAttributes) {
  PatchSchema a, b;
  a.AddAttribute("x", ValueType::kInt);
  b.AddAttribute("y", ValueType::kString);
  auto joined = PatchSchema::Join(a, b);
  ASSERT_TRUE(joined.ok());
  EXPECT_TRUE(joined->HasAttribute("x"));
  EXPECT_TRUE(joined->HasAttribute("y"));
  PatchSchema conflicting;
  conflicting.AddAttribute("x", ValueType::kString);
  EXPECT_TRUE(PatchSchema::Join(a, conflicting).status().IsTypeError());
}

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("dl_core_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                .string();
    std::filesystem::remove_all(root_);
    auto db = Database::Open(root_);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
  }
  void TearDown() override {
    db_.reset();
    std::filesystem::remove_all(root_);
  }

  PatchCollection LabeledPatches() {
    PatchCollection out;
    for (int i = 0; i < 100; ++i) {
      Patch p;
      p.set_id(static_cast<PatchId>(i + 1));
      p.set_bbox(nn::BBox{i % 10, i / 10, i % 10 + 5, i / 10 + 5});
      p.mutable_meta().Set(meta_keys::kLabel,
                           i % 3 == 0 ? "car" : "person");
      p.mutable_meta().Set(meta_keys::kFrameNo, int64_t{i / 4});
      p.mutable_meta().Set(meta_keys::kScore, 0.5 + 0.005 * i);
      p.set_features(Tensor::FromVector(
          {static_cast<float>(i % 7), static_cast<float>(i % 11)}));
      out.push_back(p);
    }
    return out;
  }

  std::string root_;
  std::unique_ptr<Database> db_;
};

TEST_F(DatabaseTest, ViewsRegisterAndFetch) {
  ASSERT_TRUE(db_->RegisterView("v", LabeledPatches()).ok());
  auto view = db_->GetView("v");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->patches.size(), 100u);
  EXPECT_TRUE(db_->GetView("missing").status().IsNotFound());
}

TEST_F(DatabaseTest, IndexLifecycle) {
  ASSERT_TRUE(db_->RegisterView("v", LabeledPatches()).ok());
  auto stats = db_->BuildIndex("v", IndexKind::kHash, meta_keys::kLabel);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_entries, 100u);
  ASSERT_TRUE(
      db_->BuildIndex("v", IndexKind::kBPlusTree, meta_keys::kFrameNo).ok());
  ASSERT_TRUE(db_->BuildIndex("v", IndexKind::kBallTree).ok());
  ASSERT_TRUE(db_->BuildIndex("v", IndexKind::kRTree).ok());
  auto view = db_->GetView("v");
  EXPECT_EQ((*view)->hash_indexes.size(), 1u);
  EXPECT_NE((*view)->feature_index, nullptr);
  ASSERT_TRUE(db_->DropIndexes("v").ok());
  EXPECT_EQ((*view)->hash_indexes.size(), 0u);
  EXPECT_EQ((*view)->feature_index, nullptr);
}

TEST_F(DatabaseTest, IndexValidation) {
  ASSERT_TRUE(db_->RegisterView("v", LabeledPatches()).ok());
  EXPECT_TRUE(db_->BuildIndex("v", IndexKind::kHash, "")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(db_->BuildIndex("nope", IndexKind::kHash, "k")
                  .status()
                  .IsNotFound());
}

TEST_F(DatabaseTest, PersistAndReloadView) {
  ASSERT_TRUE(db_->RegisterView("v", LabeledPatches()).ok());
  ASSERT_TRUE(db_->PersistView("v").ok());
  EXPECT_TRUE(db_->HasPersistedView("v"));
  // Clobber the in-memory copy, then reload from disk.
  ASSERT_TRUE(db_->RegisterView("v", PatchCollection{}).ok());
  ASSERT_TRUE(db_->LoadPersistedView("v").ok());
  auto view = db_->GetView("v");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->patches.size(), 100u);
  EXPECT_TRUE((*view)->patches[5].has_features());
}

TEST_F(DatabaseTest, VideoIngestAndLoad) {
  std::vector<Image> frames;
  for (int f = 0; f < 10; ++f) {
    Image img(16, 12, 3);
    for (auto& b : img.bytes()) b = static_cast<uint8_t>(f * 10);
    frames.push_back(img);
  }
  VideoStoreOptions options;
  options.format = VideoFormat::kSegmented;
  options.clip_frames = 4;
  ASSERT_TRUE(db_->IngestVideo("clip", FramesFromVector(frames), options,
                               "test clip")
                  .ok());
  auto reader = db_->LoadVideo("clip");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->num_frames(), 10);
  auto frame = (*reader)->ReadFrame(7);
  ASSERT_TRUE(frame.ok());
  EXPECT_NEAR(frame->At(3, 3, 0), 70, 4);
  EXPECT_TRUE(db_->LoadVideo("missing").status().IsNotFound());
  EXPECT_TRUE(db_->catalog()->Contains("clip"));
}

TEST_F(DatabaseTest, QueryFullScanVsIndexSameResult) {
  ASSERT_TRUE(db_->RegisterView("v", LabeledPatches()).ok());
  auto without_index = Query(db_.get(), "v")
                           .Where(Eq(Attr(meta_keys::kLabel), Lit("car")))
                           .Count();
  ASSERT_TRUE(without_index.ok());
  ASSERT_TRUE(db_->BuildIndex("v", IndexKind::kHash, meta_keys::kLabel).ok());
  auto with_index = Query(db_.get(), "v")
                        .Where(Eq(Attr(meta_keys::kLabel), Lit("car")))
                        .Count();
  ASSERT_TRUE(with_index.ok());
  EXPECT_EQ(*without_index, *with_index);
  EXPECT_EQ(*with_index, 34u);  // i % 3 == 0 for 0..99
}

TEST_F(DatabaseTest, QueryPlansReflectIndexes) {
  ASSERT_TRUE(db_->RegisterView("v", LabeledPatches()).ok());
  auto plan = Query(db_.get(), "v")
                  .Where(Eq(Attr(meta_keys::kLabel), Lit("car")))
                  .Explain();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->path, AccessPath::kFullScan);
  ASSERT_TRUE(db_->BuildIndex("v", IndexKind::kHash, meta_keys::kLabel).ok());
  plan = Query(db_.get(), "v")
             .Where(Eq(Attr(meta_keys::kLabel), Lit("car")))
             .Explain();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->path, AccessPath::kHashLookup);
}

TEST_F(DatabaseTest, QueryRangeUsesBTree) {
  ASSERT_TRUE(db_->RegisterView("v", LabeledPatches()).ok());
  ASSERT_TRUE(
      db_->BuildIndex("v", IndexKind::kBPlusTree, meta_keys::kFrameNo).ok());
  Query query(db_.get(), "v");
  query.Where(Le(Attr(meta_keys::kFrameNo), Lit(int64_t{5})));
  auto plan = query.Explain();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->path, AccessPath::kBTreeRange);
  auto count = query.Count();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 24u);  // frames 0..5, 4 patches each
}

TEST_F(DatabaseTest, QueryConjunctionUsesIndexPlusResidual) {
  ASSERT_TRUE(db_->RegisterView("v", LabeledPatches()).ok());
  ASSERT_TRUE(db_->BuildIndex("v", IndexKind::kHash, meta_keys::kLabel).ok());
  Query query(db_.get(), "v");
  query.Where(Eq(Attr(meta_keys::kLabel), Lit("car")));
  query.Where(Ge(Attr(meta_keys::kScore), Lit(0.8)));
  auto result = query.Execute();
  ASSERT_TRUE(result.ok());
  for (const Patch& p : *result) {
    EXPECT_EQ(*p.meta().Get(meta_keys::kLabel).AsString().value(), "car");
    EXPECT_GE(p.meta().Get(meta_keys::kScore).AsNumeric().value(), 0.8);
  }
}

TEST_F(DatabaseTest, QuerySchemaValidationRejectsBadLabel) {
  ASSERT_TRUE(db_->RegisterView("v", LabeledPatches()).ok());
  Query query(db_.get(), "v");
  query.CheckSchema(DetectorSchema());
  query.Where(Eq(Attr(meta_keys::kLabel), Lit("unicorn")));
  EXPECT_TRUE(query.Count().status().IsTypeError());
}

TEST_F(DatabaseTest, QueryTerminals) {
  ASSERT_TRUE(db_->RegisterView("v", LabeledPatches()).ok());
  auto distinct = Query(db_.get(), "v").CountDistinct(meta_keys::kFrameNo);
  ASSERT_TRUE(distinct.ok());
  EXPECT_EQ(*distinct, 25u);
  auto groups = Query(db_.get(), "v").GroupCount(meta_keys::kLabel);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ((*groups)["'car'"], 34u);
  auto first = Query(db_.get(), "v")
                   .Where(Eq(Attr(meta_keys::kLabel), Lit("person")))
                   .FirstBy(meta_keys::kFrameNo);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  EXPECT_EQ((**first).id(), 2u);  // i=1 is the first person
  auto limited = Query(db_.get(), "v").Limit(7).Execute();
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->size(), 7u);
}

TEST(PlannerTest, SimJoinCostModelPrefersIndexForLargeInputs) {
  // Large symmetric join in low dimension: ball-tree should win.
  EXPECT_EQ(Planner::ChooseSimilarityJoin(20000, 20000, 3, false),
            SimJoinStrategy::kBallTree);
  // Tiny join: the dense kernel's fixed overhead is not worth paying and
  // tree construction dominates; nested loop or all-pairs must win.
  EXPECT_NE(Planner::ChooseSimilarityJoin(5, 5, 8, false),
            SimJoinStrategy::kBallTree);
}

TEST(PlannerTest, CostsGrowWithSizeAndDim) {
  for (auto strategy :
       {SimJoinStrategy::kNestedLoop, SimJoinStrategy::kBallTree,
        SimJoinStrategy::kAllPairs}) {
    EXPECT_LT(Planner::EstimateSimJoinCost(strategy, 100, 100, 8),
              Planner::EstimateSimJoinCost(strategy, 1000, 1000, 8));
    EXPECT_LE(Planner::EstimateSimJoinCost(strategy, 500, 500, 4),
              Planner::EstimateSimJoinCost(strategy, 500, 500, 64));
  }
}

TEST(PlannerTest, GpuDiscountsDenseKernel) {
  // Pick sizes where the ball-tree wins on CPU in a moderate dimension;
  // the GPU's dense-kernel discount should flip at least one of them.
  bool flipped = false;
  for (size_t n : {500, 1000, 3000, 8000, 20000}) {
    auto cpu = Planner::ChooseSimilarityJoin(n, n, 8, false);
    auto gpu = Planner::ChooseSimilarityJoin(n, n, 8, true);
    if (cpu == SimJoinStrategy::kBallTree &&
        gpu == SimJoinStrategy::kAllPairs) {
      flipped = true;
    }
  }
  EXPECT_TRUE(flipped);
}

}  // namespace
}  // namespace deeplens
