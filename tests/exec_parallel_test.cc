// Differential harness for the morsel-parallel join and pre-merge
// aggregation paths. Every parallel operator must produce byte-identical
// results to (a) its own single-threaded core (MorselOptions.num_threads
// = 1) and (b) a tuple-at-a-time oracle built from the MakeVolcano*
// operators, across randomized inputs that vary batch geometry, key skew,
// NULL density, and the empty/one-row edge shapes — plus determinism
// under repetition for the ordered merge. The rounds below cover well
// over 100 distinct randomized inputs (24 hash-join pairs, 8 nested-loop
// pairs, 8 ball-tree inputs, 96 aggregate rounds, plus the edge-shape and
// planner sweeps).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "core/database.h"
#include "core/planner.h"
#include "exec/aggregates.h"
#include "exec/batch.h"
#include "exec/expression.h"
#include "exec/joins.h"
#include "exec/operators.h"
#include "exec/pipeline.h"

namespace deeplens {
namespace {

// --- Randomized inputs ------------------------------------------------------

struct InputSpec {
  uint64_t seed = 1;
  size_t n = 0;
  /// Join/group key cardinality; small values force heavy duplication.
  int num_keys = 8;
  /// Probability mass concentrated on key 0 (skewed-key workloads).
  double skew = 0.0;
  /// Fraction of rows with the "k"/"g"/"v" columns entirely absent
  /// (reads surface as typed NULLs).
  double null_fraction = 0.0;
  /// Fraction of keyed rows whose "k" is an int64 instead of a string —
  /// exercises the type-tagged key encoding.
  double int_key_fraction = 0.0;
  bool with_features = false;
};

PatchCollection MakeInput(const InputSpec& spec) {
  Rng rng(spec.seed);
  PatchCollection out;
  out.reserve(spec.n);
  for (size_t i = 0; i < spec.n; ++i) {
    Patch p;
    p.set_id(static_cast<PatchId>(i + 1));
    p.set_ref(ImgRef{"diff", static_cast<int64_t>(i), kInvalidPatchId});
    p.set_bbox(nn::BBox{0, 0, 8, 8});
    p.mutable_meta().Set(meta_keys::kScore, rng.NextDouble());
    if (!rng.NextBool(spec.null_fraction)) {
      const int key = rng.NextBool(spec.skew)
                          ? 0
                          : static_cast<int>(rng.NextU64Below(
                                static_cast<uint64_t>(spec.num_keys)));
      if (rng.NextBool(spec.int_key_fraction)) {
        p.mutable_meta().Set("k", int64_t{key});
      } else {
        p.mutable_meta().Set("k", "k" + std::to_string(key));
      }
      p.mutable_meta().Set("g", "g" + std::to_string(key % 5));
      p.mutable_meta().Set("v", rng.NextInt(-1000, 1000));
    }
    if (spec.with_features) {
      std::vector<float> f(6);
      for (auto& v : f) v = rng.NextFloat();
      p.set_features(Tensor::FromVector(std::move(f)));
    }
    out.push_back(std::move(p));
  }
  return out;
}

std::string BytesOfTuple(const PatchTuple& tuple) {
  ByteBuffer buf;
  for (const Patch& p : tuple) p.SerializeInto(&buf);
  const std::vector<uint8_t>& raw = buf.data();
  return std::string(raw.begin(), raw.end());
}

std::vector<std::string> BytesOf(const std::vector<PatchTuple>& tuples) {
  std::vector<std::string> out;
  out.reserve(tuples.size());
  for (const PatchTuple& t : tuples) out.push_back(BytesOfTuple(t));
  return out;
}

// --- Volcano oracles --------------------------------------------------------

// Enumerates the full cross product (left-major, both sides ascending) as
// 2-tuples; feeding it through MakeVolcanoFilter is the θ-join oracle.
PatchIteratorPtr MakePairSource(const PatchCollection& lhs,
                                const PatchCollection& rhs) {
  auto i = std::make_shared<size_t>(0);
  auto j = std::make_shared<size_t>(0);
  return MakeGeneratorSource(
      [&lhs, &rhs, i, j]() -> Result<std::optional<PatchTuple>> {
        if (rhs.empty() || *i >= lhs.size()) {
          return std::optional<PatchTuple>();
        }
        PatchTuple t{lhs[*i], rhs[*j]};
        if (++*j == rhs.size()) {
          *j = 0;
          ++*i;
        }
        return std::optional<PatchTuple>(std::move(t));
      });
}

Result<std::vector<PatchTuple>> OracleJoin(const PatchCollection& lhs,
                                           const PatchCollection& rhs,
                                           const ExprPtr& predicate) {
  auto plan = MakeVolcanoFilter(MakePairSource(lhs, rhs), predicate);
  return Collect(plan.get());
}

// Filters through the Volcano oracle, returning the surviving patches in
// input order (the reference row stream every aggregate oracle reduces).
PatchCollection OracleSurvivors(const PatchCollection& rows,
                                const ExprPtr& predicate) {
  auto plan = predicate ? MakeVolcanoFilter(MakeVectorSource(rows), predicate)
                        : MakeVectorSource(rows);
  auto out = CollectPatches(plan.get());
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return out.ok() ? std::move(out).value() : PatchCollection{};
}

// Rotating predicate pool for the aggregate rounds; index 0 is the null
// (keep-everything) predicate and index 4 is unsatisfiable (all-false).
ExprPtr ScanPredicate(int which) {
  switch (which % 6) {
    case 0:
      return nullptr;
    case 1:
      return Ge(Attr(meta_keys::kScore), Lit(0.5));
    case 2:
      return Eq(Attr("g"), Lit("g1"));
    case 3:
      // NULL-sensitive: rows missing "v" evaluate NULL < 0 by type tag.
      return Lt(Attr("v"), Lit(int64_t{0}));
    case 4:
      return Lt(Attr(meta_keys::kScore), Lit(-1.0));  // all-false
    default:
      return Or(Eq(Attr("k"), Lit("k0")), Gt(Attr(meta_keys::kScore),
                                             Lit(0.9)));
  }
}

// Join residuals (evaluated over the concatenated 2-tuple).
ExprPtr JoinResidual(int which) {
  switch (which % 3) {
    case 0:
      return nullptr;
    case 1:
      return Lt(Attr(0, meta_keys::kScore), Attr(1, meta_keys::kScore));
    default:
      return Ne(Attr(0, "g"), Attr(1, "g"));
  }
}

// --- Hash equality join -----------------------------------------------------

TEST(ParallelHashJoinTest, MatchesSerialCoreAndVolcanoOracle) {
  // 24 randomized input pairs: both build sides (left smaller / right
  // smaller / equal), heavy skew, NULL-heavy keys, mixed-type keys.
  const size_t sizes[][2] = {{0, 0},   {0, 40},  {40, 0},  {1, 1},
                             {1, 200}, {200, 1}, {37, 37}, {250, 900},
                             {900, 250}, {513, 514}, {1200, 300}, {64, 2048}};
  int round = 0;
  for (const auto& sz : sizes) {
    for (int variant = 0; variant < 2; ++variant, ++round) {
      InputSpec left_spec;
      left_spec.seed = 1000 + static_cast<uint64_t>(round);
      left_spec.n = sz[0];
      left_spec.num_keys = variant == 0 ? 11 : 3;
      left_spec.skew = variant == 0 ? 0.0 : 0.6;
      left_spec.null_fraction = variant == 0 ? 0.0 : 0.3;
      left_spec.int_key_fraction = variant == 0 ? 0.0 : 0.25;
      InputSpec right_spec = left_spec;
      right_spec.seed += 7777;
      right_spec.n = sz[1];
      const PatchCollection lhs = MakeInput(left_spec);
      const PatchCollection rhs = MakeInput(right_spec);
      const ExprPtr residual = JoinResidual(round);

      const ExprPtr key_eq = Eq(Attr(0, "k"), Attr(1, "k"));
      auto expected = OracleJoin(
          lhs, rhs, residual ? And(key_eq, residual) : key_eq);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();

      MorselOptions serial;
      serial.num_threads = 1;
      auto serial_out = HashEqualityJoin(lhs, rhs, "k", residual, nullptr,
                                         serial);
      ASSERT_TRUE(serial_out.ok()) << serial_out.status().ToString();
      EXPECT_EQ(BytesOf(*serial_out), BytesOf(*expected))
          << "serial, round " << round;

      for (size_t morsel_size : {size_t{0}, size_t{13}, size_t{256}}) {
        MorselOptions options;
        options.morsel_size = morsel_size;
        JoinStats stats;
        auto parallel_out =
            HashEqualityJoin(lhs, rhs, "k", residual, &stats, options);
        ASSERT_TRUE(parallel_out.ok()) << parallel_out.status().ToString();
        EXPECT_EQ(BytesOf(*parallel_out), BytesOf(*expected))
            << "round " << round << " morsel_size " << morsel_size;
        EXPECT_EQ(stats.tuples_emitted, expected->size());
      }
    }
  }
}

TEST(ParallelHashJoinTest, RepeatedRunsAreDeterministic) {
  InputSpec spec;
  spec.seed = 42;
  spec.n = 1500;
  spec.num_keys = 4;
  spec.skew = 0.5;
  const PatchCollection lhs = MakeInput(spec);
  spec.seed = 43;
  spec.n = 600;
  const PatchCollection rhs = MakeInput(spec);

  auto first = HashEqualityJoin(lhs, rhs, "k", JoinResidual(1));
  ASSERT_TRUE(first.ok());
  ASSERT_GT(first->size(), 0u);
  for (int rep = 0; rep < 4; ++rep) {
    auto again = HashEqualityJoin(lhs, rhs, "k", JoinResidual(1));
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(BytesOf(*again), BytesOf(*first)) << "rep " << rep;
  }
}

// --- Radix-partitioned hash join --------------------------------------------

// Restores (or clears) an env var on scope exit so the radix override
// cannot leak into other tests. Mirrors the guard in cache_test.cc.
class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_value_ = old != nullptr;
  }
  ~EnvGuard() {
    if (had_value_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  void Set(const char* value) { ::setenv(name_, value, 1); }

 private:
  const char* name_;
  std::string saved_;
  bool had_value_ = false;
};

TEST(RadixHashJoinTest, EnvForcedRadixMatchesOracleAcrossPartitionEdges) {
  // DEEPLENS_JOIN_PARTITIONS forces the radix core onto inputs far below
  // its natural row threshold, so the oracle stays affordable. Partition
  // counts cover the degenerate edges: 1 (everything in one partition)
  // and 256 (more partitions than rows — most partitions empty).
  struct Variant {
    const char* label;
    InputSpec spec;
  };
  std::vector<Variant> variants;
  {
    InputSpec uniform;
    uniform.n = 180;
    uniform.num_keys = 13;
    variants.push_back({"uniform", uniform});
    InputSpec skewed = uniform;
    skewed.skew = 0.85;
    skewed.num_keys = 4;
    variants.push_back({"skewed", skewed});
    InputSpec null_heavy = uniform;
    null_heavy.null_fraction = 0.6;
    variants.push_back({"null_heavy", null_heavy});
    InputSpec all_dup = uniform;
    all_dup.num_keys = 1;  // every keyed row joins every keyed row
    all_dup.n = 120;
    variants.push_back({"all_duplicate", all_dup});
  }

  EnvGuard guard("DEEPLENS_JOIN_PARTITIONS");
  int round = 0;
  for (const Variant& v : variants) {
    InputSpec left_spec = v.spec;
    left_spec.seed = 42000 + static_cast<uint64_t>(round);
    InputSpec right_spec = left_spec;
    right_spec.seed += 991;
    right_spec.n = left_spec.n / 2 + 1;
    const PatchCollection lhs = MakeInput(left_spec);
    const PatchCollection rhs = MakeInput(right_spec);
    const ExprPtr residual = JoinResidual(round);

    const ExprPtr key_eq = Eq(Attr(0, "k"), Attr(1, "k"));
    auto expected =
        OracleJoin(lhs, rhs, residual ? And(key_eq, residual) : key_eq);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();

    for (const char* parts : {"1", "4", "256"}) {
      guard.Set(parts);
      JoinStats stats;
      auto radix_out = HashEqualityJoin(lhs, rhs, "k", residual, &stats);
      ASSERT_TRUE(radix_out.ok()) << radix_out.status().ToString();
      EXPECT_EQ(BytesOf(*radix_out), BytesOf(*expected))
          << v.label << " partitions " << parts;
      EXPECT_EQ(stats.partitions_used, std::strtoull(parts, nullptr, 10))
          << v.label;
      EXPECT_EQ(stats.tuples_emitted, expected->size()) << v.label;
    }
    ++round;
  }
}

TEST(RadixHashJoinTest, NaturalThresholdMatchesSerialCore) {
  // Above kRadixMinRows combined input the radix core engages without the
  // env override; the serial core (oracle-validated above) is the
  // reference. Skew concentrates ~half of each side on one key.
  InputSpec spec;
  spec.seed = 4242;
  spec.n = 3000;
  spec.num_keys = 64;
  spec.skew = 0.5;
  spec.null_fraction = 0.1;
  const PatchCollection lhs = MakeInput(spec);
  spec.seed = 4243;
  spec.n = 1500;
  const PatchCollection rhs = MakeInput(spec);
  const ExprPtr residual = JoinResidual(1);

  MorselOptions serial;
  serial.num_threads = 1;
  JoinStats serial_stats;
  auto serial_out =
      HashEqualityJoin(lhs, rhs, "k", residual, &serial_stats, serial);
  ASSERT_TRUE(serial_out.ok());
  EXPECT_EQ(serial_stats.partitions_used, 0u) << "serial plan must not radix";

  JoinStats stats;
  auto radix_out = HashEqualityJoin(lhs, rhs, "k", residual, &stats);
  ASSERT_TRUE(radix_out.ok());
  EXPECT_EQ(BytesOf(*radix_out), BytesOf(*serial_out));
  EXPECT_GT(stats.partitions_used, 0u)
      << "combined input above threshold must take the radix core";
  EXPECT_GE(stats.max_partition_skew, 1.0);
}

TEST(RadixHashJoinTest, RepeatedRunsAreDeterministic) {
  // The chunked probe dispatches work in a scheduling-dependent order;
  // the canonical-slot stitch must erase that from the output.
  EnvGuard guard("DEEPLENS_JOIN_PARTITIONS");
  guard.Set("8");
  InputSpec spec;
  spec.seed = 606;
  spec.n = 900;
  spec.num_keys = 5;
  spec.skew = 0.6;
  spec.null_fraction = 0.2;
  const PatchCollection lhs = MakeInput(spec);
  spec.seed = 607;
  spec.n = 400;
  const PatchCollection rhs = MakeInput(spec);

  auto first = HashEqualityJoin(lhs, rhs, "k", JoinResidual(1));
  ASSERT_TRUE(first.ok());
  ASSERT_GT(first->size(), 0u);
  for (int rep = 0; rep < 4; ++rep) {
    auto again = HashEqualityJoin(lhs, rhs, "k", JoinResidual(1));
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(BytesOf(*again), BytesOf(*first)) << "rep " << rep;
  }
}

// --- Nested-loop θ-join -----------------------------------------------------

TEST(ParallelNestedLoopJoinTest, MatchesSerialCoreAndVolcanoOracle) {
  const size_t sizes[][2] = {{0, 25}, {1, 1}, {30, 90}, {128, 17},
                             {75, 75}, {300, 40}, {2, 500}, {41, 0}};
  int round = 0;
  for (const auto& sz : sizes) {
    InputSpec spec;
    spec.seed = 5000 + static_cast<uint64_t>(round);
    spec.n = sz[0];
    spec.null_fraction = 0.2;
    const PatchCollection lhs = MakeInput(spec);
    spec.seed += 333;
    spec.n = sz[1];
    const PatchCollection rhs = MakeInput(spec);
    const ExprPtr pred = Lt(Attr(0, meta_keys::kScore),
                            Attr(1, meta_keys::kScore));

    auto expected = OracleJoin(lhs, rhs, pred);
    ASSERT_TRUE(expected.ok());

    MorselOptions serial;
    serial.num_threads = 1;
    auto serial_out = NestedLoopJoin(lhs, rhs, pred, nullptr, serial);
    ASSERT_TRUE(serial_out.ok());
    EXPECT_EQ(BytesOf(*serial_out), BytesOf(*expected)) << "round " << round;

    MorselOptions tiny;
    tiny.batch_size = 1;
    tiny.morsel_size = 1;  // one outer row per morsel
    for (const MorselOptions& options : {MorselOptions{}, tiny}) {
      JoinStats stats;
      auto parallel_out = NestedLoopJoin(lhs, rhs, pred, &stats, options);
      ASSERT_TRUE(parallel_out.ok());
      EXPECT_EQ(BytesOf(*parallel_out), BytesOf(*expected))
          << "round " << round;
      EXPECT_EQ(stats.pairs_examined,
                static_cast<uint64_t>(lhs.size()) * rhs.size());
    }
    ++round;
  }
}

// --- Ball-tree similarity join ----------------------------------------------

TEST(ParallelBallTreeJoinTest, MatchesSerialCoreAndOracleAsMultiset) {
  // The tree probe emits matches in traversal order, so the oracle
  // comparison is order-normalized; serial-vs-parallel stays byte-exact
  // (ordered merge) and is checked unsorted.
  for (int round = 0; round < 8; ++round) {
    InputSpec spec;
    spec.seed = 9000 + static_cast<uint64_t>(round);
    spec.n = static_cast<size_t>(40 + round * 55);
    spec.with_features = true;
    const PatchCollection lhs = MakeInput(spec);
    spec.seed += 11;
    spec.n = static_cast<size_t>(25 + round * 70);
    const PatchCollection rhs = MakeInput(spec);

    SimilarityJoinOptions join_options;
    join_options.max_distance = 0.55f;

    MorselOptions serial;
    serial.num_threads = 1;
    auto serial_out =
        BallTreeSimilarityJoin(lhs, rhs, join_options, nullptr, nullptr,
                               serial);
    ASSERT_TRUE(serial_out.ok()) << serial_out.status().ToString();
    auto parallel_out =
        BallTreeSimilarityJoin(lhs, rhs, join_options, nullptr, nullptr);
    ASSERT_TRUE(parallel_out.ok());
    EXPECT_EQ(BytesOf(*parallel_out), BytesOf(*serial_out))
        << "round " << round;

    // Oracle: brute-force pairs within the threshold, skipping id-equal
    // pairs, as a multiset.
    const ExprPtr pred = Le(FeatureDistance(0, 1), Lit(0.55));
    auto oracle = OracleJoin(lhs, rhs, pred);
    ASSERT_TRUE(oracle.ok());
    std::vector<std::string> expected;
    for (const PatchTuple& t : *oracle) {
      if (t[0].id() == t[1].id()) continue;
      expected.push_back(BytesOfTuple(t));
    }
    std::vector<std::string> actual = BytesOf(*parallel_out);
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected) << "round " << round;
  }
}

// --- Pre-merge aggregation --------------------------------------------------

TEST(ParallelAggregateTest, MatchesVolcanoOracleOnRandomizedInputs) {
  // 16 input shapes × 6 predicates = 96 randomized aggregate rounds, each
  // checking all six parallel aggregates against reductions of the
  // Volcano-filtered survivor stream.
  const size_t sizes[] = {0, 1, 2, 63, 64, 65, 500, 1000,
                          1023, 1024, 1025, 2000, 3000, 4096, 5000, 8000};
  int round = 0;
  for (size_t n : sizes) {
    for (int which = 0; which < 6; ++which, ++round) {
      InputSpec spec;
      spec.seed = 20000 + static_cast<uint64_t>(round);
      spec.n = n;
      spec.num_keys = 6;
      spec.skew = (round % 3 == 0) ? 0.7 : 0.0;
      spec.null_fraction = (round % 2 == 0) ? 0.35 : 0.0;
      const PatchCollection rows = MakeInput(spec);
      const ExprPtr pred = ScanPredicate(which);
      const PatchCollection survivors = OracleSurvivors(rows, pred);

      MorselOptions tiny;
      tiny.batch_size = 1;
      tiny.morsel_size = 7;
      for (const MorselOptions& options : {MorselOptions{}, tiny}) {
        // COUNT(*)
        auto count = ParallelCount(rows, pred, options);
        ASSERT_TRUE(count.ok()) << count.status().ToString();
        EXPECT_EQ(*count, survivors.size()) << "round " << round;

        // COUNT(DISTINCT k)
        std::unordered_set<std::string> distinct;
        for (const Patch& p : survivors) {
          distinct.insert(p.meta().Get("k").ToIndexKey());
        }
        auto distinct_count = ParallelCountDistinctKey(rows, "k", pred,
                                                       options);
        ASSERT_TRUE(distinct_count.ok());
        EXPECT_EQ(*distinct_count, distinct.size()) << "round " << round;

        // GROUP BY g → COUNT
        std::map<std::string, uint64_t> group_counts;
        for (const Patch& p : survivors) {
          ++group_counts[p.meta().Get("g").ToDisplayString()];
        }
        auto groups = ParallelGroupByCount(rows, "g", pred, options);
        ASSERT_TRUE(groups.ok());
        EXPECT_EQ(*groups, group_counts) << "round " << round;

        // GROUP BY g → SUM/MIN/MAX(v). "v" is integer-valued, so the
        // doubles are exact and the parallel sum must equal the serial
        // one bit-for-bit.
        for (NumericAgg agg :
             {NumericAgg::kSum, NumericAgg::kMin, NumericAgg::kMax}) {
          std::map<std::string, double> expected_num;
          for (const Patch& p : survivors) {
            auto num = p.meta().Get("v").AsNumeric();
            if (!num.ok()) continue;
            auto [iter, inserted] = expected_num.emplace(
                p.meta().Get("g").ToDisplayString(), num.value());
            if (inserted) continue;
            if (agg == NumericAgg::kSum) iter->second += num.value();
            if (agg == NumericAgg::kMin) {
              iter->second = std::min(iter->second, num.value());
            }
            if (agg == NumericAgg::kMax) {
              iter->second = std::max(iter->second, num.value());
            }
          }
          auto numeric =
              ParallelGroupByNumeric(rows, "g", "v", agg, pred, options);
          ASSERT_TRUE(numeric.ok());
          EXPECT_EQ(*numeric, expected_num)
              << "round " << round << " agg " << static_cast<int>(agg);
        }

        // FirstBy-style argmin over "v" (earliest row wins ties).
        const Patch* best = nullptr;
        for (const Patch& p : survivors) {
          if (best == nullptr ||
              p.meta().Get("v").Compare(best->meta().Get("v")) < 0) {
            best = &p;
          }
        }
        auto min_by = ParallelMinBy(rows, "v", pred, options);
        ASSERT_TRUE(min_by.ok());
        ASSERT_EQ(min_by->has_value(), best != nullptr) << "round " << round;
        if (best != nullptr) {
          EXPECT_EQ(BytesOfTuple(PatchTuple{**min_by}),
                    BytesOfTuple(PatchTuple{*best}))
              << "round " << round;
        }
      }
    }
  }
}

TEST(ParallelAggregateTest, PartitionedMergeHighCardinalityMatchesSerial) {
  // Enough distinct groups that the summed per-morsel partials clear the
  // partitioned-merge gate (kPartitionedMergeMinEntries), forcing the
  // radix scatter + partition-wise fold instead of the serial map merge.
  Rng rng(0xcafe);
  PatchCollection rows;
  rows.reserve(12000);
  for (size_t i = 0; i < 12000; ++i) {
    Patch p;
    p.set_id(static_cast<PatchId>(i + 1));
    p.set_ref(ImgRef{"hicard", static_cast<int64_t>(i), kInvalidPatchId});
    p.set_bbox(nn::BBox{0, 0, 8, 8});
    p.mutable_meta().Set("g", "grp" + std::to_string(rng.NextU64Below(6000)));
    p.mutable_meta().Set("v", rng.NextInt(-1000, 1000));
    rows.push_back(std::move(p));
  }

  MorselOptions serial;
  serial.num_threads = 1;
  auto serial_counts = ParallelGroupByCount(rows, "g", nullptr, serial);
  auto serial_sums =
      ParallelGroupByNumeric(rows, "g", "v", NumericAgg::kSum, nullptr,
                             serial);
  auto serial_distinct =
      ParallelCountDistinctKey(rows, "g", nullptr, serial);
  ASSERT_TRUE(serial_counts.ok() && serial_sums.ok() && serial_distinct.ok());
  EXPECT_GT(serial_counts->size(), 4096u)
      << "cardinality must clear the partitioned-merge gate";

  for (int rep = 0; rep < 3; ++rep) {
    auto counts = ParallelGroupByCount(rows, "g");
    auto sums = ParallelGroupByNumeric(rows, "g", "v", NumericAgg::kSum);
    auto distinct = ParallelCountDistinctKey(rows, "g");
    ASSERT_TRUE(counts.ok() && sums.ok() && distinct.ok());
    EXPECT_EQ(*counts, *serial_counts) << "rep " << rep;
    EXPECT_EQ(*sums, *serial_sums) << "rep " << rep;
    EXPECT_EQ(*distinct, *serial_distinct) << "rep " << rep;
  }
}

TEST(ParallelAggregateTest, RepeatedRunsAreDeterministic) {
  InputSpec spec;
  spec.seed = 77;
  spec.n = 6000;
  spec.num_keys = 9;
  spec.null_fraction = 0.1;
  const PatchCollection rows = MakeInput(spec);
  const ExprPtr pred = ScanPredicate(1);

  auto first_groups = ParallelGroupByCount(rows, "g", pred);
  auto first_sum =
      ParallelGroupByNumeric(rows, "g", "v", NumericAgg::kSum, pred);
  auto first_min = ParallelMinBy(rows, "v", pred);
  ASSERT_TRUE(first_groups.ok() && first_sum.ok() && first_min.ok());
  for (int rep = 0; rep < 4; ++rep) {
    auto groups = ParallelGroupByCount(rows, "g", pred);
    auto sum = ParallelGroupByNumeric(rows, "g", "v", NumericAgg::kSum, pred);
    auto min_by = ParallelMinBy(rows, "v", pred);
    ASSERT_TRUE(groups.ok() && sum.ok() && min_by.ok());
    EXPECT_EQ(*groups, *first_groups) << "rep " << rep;
    EXPECT_EQ(*sum, *first_sum) << "rep " << rep;
    EXPECT_EQ(BytesOfTuple(PatchTuple{**min_by}),
              BytesOfTuple(PatchTuple{**first_min}))
        << "rep " << rep;
  }
}

TEST(ParallelAggregateTest, PredicateErrorsPropagateFromWorkers) {
  PatchCollection rows;
  for (int i = 0; i < 4000; ++i) {
    Patch p;
    p.set_id(static_cast<PatchId>(i + 1));
    // Row 3170 carries a string where the predicate expects a flag.
    p.mutable_meta().Set("flag", i == 3170 ? MetaValue("oops")
                                           : MetaValue(i % 2 == 0));
    rows.push_back(std::move(p));
  }
  auto count = ParallelCount(rows, Attr("flag"));
  ASSERT_FALSE(count.ok());
  EXPECT_TRUE(count.status().IsTypeError());
}

// --- Planner pushdown -------------------------------------------------------

TEST(PlannerAggregatePushdownTest, FullScanAndIndexPathsAgree) {
  InputSpec spec;
  spec.seed = 321;
  spec.n = 2500;
  spec.num_keys = 7;
  spec.null_fraction = 0.15;

  ViewCache unindexed;
  unindexed.patches = MakeInput(spec);
  ViewCache indexed;
  indexed.patches = unindexed.patches;
  HashIndex& g_index = indexed.hash_indexes["g"];
  for (size_t i = 0; i < indexed.patches.size(); ++i) {
    g_index.Insert(Slice(indexed.patches[i].meta().Get("g").ToIndexKey()),
                   static_cast<RowId>(i));
  }

  // Sargable predicate: the indexed view takes the hash-lookup path, the
  // bare view the parallel full scan; every aggregate must agree, and
  // both must match reducing the materialized scan.
  const ExprPtr pred =
      And(Eq(Attr("g"), Lit("g2")), Ge(Attr(meta_keys::kScore), Lit(0.25)));
  for (const ViewCache* view : {&unindexed, &indexed}) {
    PlanExplanation plan;
    auto scan = Planner::ExecuteScan(*view, pred, &plan);
    ASSERT_TRUE(scan.ok());
    if (view == &indexed) {
      EXPECT_EQ(plan.path, AccessPath::kHashLookup);
    } else {
      EXPECT_EQ(plan.path, AccessPath::kFullScan);
    }

    auto count = Planner::ExecuteScanCount(*view, pred, nullptr);
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, scan->size());

    std::unordered_set<std::string> distinct;
    std::map<std::string, uint64_t> group_counts;
    const Patch* best = nullptr;
    for (const Patch& p : *scan) {
      distinct.insert(p.meta().Get("k").ToIndexKey());
      ++group_counts[p.meta().Get("k").ToDisplayString()];
      if (best == nullptr ||
          p.meta().Get("v").Compare(best->meta().Get("v")) < 0) {
        best = &p;
      }
    }
    auto distinct_count =
        Planner::ExecuteScanCountDistinct(*view, "k", pred, nullptr);
    ASSERT_TRUE(distinct_count.ok());
    EXPECT_EQ(*distinct_count, distinct.size());

    auto groups = Planner::ExecuteScanGroupCount(*view, "k", pred, nullptr);
    ASSERT_TRUE(groups.ok());
    EXPECT_EQ(*groups, group_counts);

    auto min_by = Planner::ExecuteScanMinBy(*view, "v", pred, nullptr);
    ASSERT_TRUE(min_by.ok());
    ASSERT_EQ(min_by->has_value(), best != nullptr);
    if (best != nullptr) {
      EXPECT_EQ(BytesOfTuple(PatchTuple{**min_by}),
                BytesOfTuple(PatchTuple{*best}));
    }
  }
}

}  // namespace
}  // namespace deeplens
