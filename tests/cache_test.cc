// Tests for the cache subsystem: the sharded byte-budgeted LRU core,
// patch fingerprints, the validated env knobs, the inference and segment
// caches, cache-on vs cache-off differential correctness over randomized
// query workloads, and eviction under thread contention (the latter runs
// under ThreadSanitizer in CI).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <set>
#include <thread>

#include "cache/cache_config.h"
#include "cache/frequency_sketch.h"
#include "cache/inference_cache.h"
#include "cache/segment_cache.h"
#include "cache/sharded_lru.h"
#include "common/env.h"
#include "common/rng.h"
#include "core/database.h"
#include "core/query.h"
#include "exec/nn_udf.h"
#include "sim/scene.h"
#include "storage/video_store.h"

namespace deeplens {
namespace {

// --- ShardedLruCache core ------------------------------------------------

using StringCache = ShardedLruCache<std::string>;

void PutStr(StringCache* cache, const std::string& key,
            const std::string& value, size_t charge) {
  cache->Put(key, std::make_shared<const std::string>(value), charge);
}

TEST(ShardedLruCacheTest, PutGetRoundTrip) {
  StringCache cache(1 << 20, 4);
  EXPECT_TRUE(cache.enabled());
  EXPECT_EQ(cache.Get("k"), nullptr);
  PutStr(&cache, "k", "v", 10);
  auto hit = cache.Get("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "v");
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(ShardedLruCacheTest, ReplaceSameKeyKeepsOneEntry) {
  StringCache cache(1 << 20, 1);
  PutStr(&cache, "k", "old", 10);
  PutStr(&cache, "k", "new", 10);
  EXPECT_EQ(cache.Stats().entries, 1u);
  EXPECT_EQ(*cache.Get("k"), "new");
}

TEST(ShardedLruCacheTest, EvictsLeastRecentlyUsed) {
  // One shard; each entry charges 36 + 1 (key) + 64 (overhead) = 101
  // bytes, so a 210-byte budget holds exactly two entries. Strict LRU
  // admission: under TinyLFU the one-shot candidate "c" would be denied.
  StringCache cache(210, 1, CacheAdmission::kLru);
  PutStr(&cache, "a", "va", 36);
  PutStr(&cache, "b", "vb", 36);
  ASSERT_NE(cache.Get("a"), nullptr);  // a becomes most-recent
  PutStr(&cache, "c", "vc", 36);       // evicts b, the LRU entry
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.Stats().evictions, 1u);
}

// --- TinyLFU admission ---------------------------------------------------

TEST(TinyLfuAdmissionTest, ColdCandidateCannotDisplaceHotVictim) {
  // Same two-entry geometry as EvictsLeastRecentlyUsed, TinyLFU policy.
  StringCache cache(210, 1);
  EXPECT_EQ(cache.admission(), CacheAdmission::kTinyLfu);
  PutStr(&cache, "a", "va", 36);
  PutStr(&cache, "b", "vb", 36);
  for (int i = 0; i < 4; ++i) {
    ASSERT_NE(cache.Get("a"), nullptr);  // both keys are demonstrably hot
    ASSERT_NE(cache.Get("b"), nullptr);
  }
  PutStr(&cache, "c", "vc", 36);  // one-shot candidate: frequency 1
  EXPECT_EQ(cache.Get("c"), nullptr);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("b"), nullptr);
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_GE(stats.admission_denied, 1u);
}

TEST(TinyLfuAdmissionTest, RepeatedlyRequestedCandidateEarnsAdmission) {
  StringCache cache(210, 1);
  PutStr(&cache, "a", "va", 36);
  PutStr(&cache, "b", "vb", 36);
  ASSERT_NE(cache.Get("a"), nullptr);  // "a" is hot; "b" stays cold
  ASSERT_NE(cache.Get("a"), nullptr);
  // A genuinely re-requested key accrues frequency through its misses
  // and eventually beats the cold victim at the LRU tail.
  for (int attempt = 0; attempt < 8 && cache.Get("c") == nullptr;
       ++attempt) {
    PutStr(&cache, "c", "vc", 36);
  }
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_NE(cache.Get("a"), nullptr);   // the hot key survived
  EXPECT_EQ(cache.Get("b"), nullptr);   // the cold one was displaced
  EXPECT_GT(cache.Stats().evictions, 0u);
}

TEST(TinyLfuAdmissionTest, ReplacingResidentKeyIsNeverDenied) {
  StringCache cache(210, 1);
  PutStr(&cache, "a", "va", 36);
  PutStr(&cache, "b", "vb", 36);
  PutStr(&cache, "a", "new", 36);  // refresh, not admission
  auto hit = cache.Get("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "new");
  EXPECT_EQ(cache.Stats().admission_denied, 0u);
}

TEST(TinyLfuAdmissionTest, ScanResistanceDifferential) {
  // The ISSUE-5 workload: a hot working set re-read every round,
  // interleaved with one-shot cold scan keys that would collectively
  // flush the cache. TinyLFU must keep the hot hit rate >= ~0.8; plain
  // LRU must show the flush.
  auto run = [](CacheAdmission admission) {
    StringCache cache(4 << 10, 1, admission);
    const int kHot = 24;            // ~24 * (64+5+64) > half the budget
    const int kColdPerRound = 96;   // each round's scan exceeds budget
    const int kRounds = 10;
    // Warm the hot set (two passes so frequencies accrue).
    for (int pass = 0; pass < 2; ++pass) {
      for (int k = 0; k < kHot; ++k) {
        const std::string key = "hot" + std::to_string(k);
        if (cache.Get(key) == nullptr) PutStr(&cache, key, "v", 64);
      }
    }
    uint64_t hot_lookups = 0, hot_hits = 0;
    int cold_seq = 0;
    for (int round = 0; round < kRounds; ++round) {
      for (int i = 0; i < kColdPerRound; ++i) {
        const std::string key = "cold" + std::to_string(cold_seq++);
        if (cache.Get(key) == nullptr) PutStr(&cache, key, "v", 64);
      }
      for (int k = 0; k < kHot; ++k) {
        const std::string key = "hot" + std::to_string(k);
        ++hot_lookups;
        if (cache.Get(key) != nullptr) {
          ++hot_hits;
        } else {
          PutStr(&cache, key, "v", 64);
        }
      }
    }
    return static_cast<double>(hot_hits) / static_cast<double>(hot_lookups);
  };
  const double tinylfu_rate = run(CacheAdmission::kTinyLfu);
  const double lru_rate = run(CacheAdmission::kLru);
  EXPECT_GE(tinylfu_rate, 0.8) << "scan traffic flushed the hot set";
  EXPECT_LT(lru_rate, 0.5) << "LRU unexpectedly scan-resistant";
  EXPECT_GT(tinylfu_rate, lru_rate);
}

TEST(FrequencySketchTest, EstimateTracksIncrementsAndSaturates) {
  FrequencySketch sketch(64);
  EXPECT_EQ(sketch.Estimate(0x1234), 0u);
  for (int i = 0; i < 3; ++i) sketch.Increment(0x1234);
  EXPECT_GE(sketch.Estimate(0x1234), 3u);  // count-min never undercounts
  for (int i = 0; i < 100; ++i) sketch.Increment(0x1234);
  EXPECT_EQ(sketch.Estimate(0x1234), 15u);  // 4-bit saturation
}

TEST(FrequencySketchTest, PeriodicHalvingAgesOutFormerlyHotKeys) {
  FrequencySketch sketch(16);  // clamped to 64 counters, period 640
  for (int i = 0; i < 20; ++i) sketch.Increment(0xfeed);
  const uint32_t before = sketch.Estimate(0xfeed);
  ASSERT_EQ(before, 15u);
  // A long run of other traffic crosses the sample period (repeatedly)
  // and halves the saturated counter toward zero.
  for (uint64_t h = 0; h < 2000; ++h) sketch.Increment(h * 2654435761u);
  EXPECT_GT(sketch.halvings(), 0u);
  EXPECT_LT(sketch.Estimate(0xfeed), before);
}

TEST(ShardedLruCacheTest, ByteBudgetHonored) {
  const size_t budget = 4096;
  const size_t shards = 4;
  // LRU: a one-shot insert storm must churn through (under TinyLFU it
  // would be admission-denied once the shards fill — covered below).
  StringCache cache(budget, shards, CacheAdmission::kLru);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    PutStr(&cache, "key" + std::to_string(i), std::string(100, 'x'), 100);
  }
  const CacheStats stats = cache.Stats();
  // Each shard stays within its slice; ceil-splitting adds at most one
  // byte of slack per shard.
  EXPECT_LE(stats.bytes, budget + shards);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.entries, 0u);
}

TEST(ShardedLruCacheTest, ByteBudgetHonoredUnderTinyLfu) {
  // The budget invariant holds under TinyLFU too, whatever mix of
  // admissions and denials the sketch produces.
  const size_t budget = 4096;
  const size_t shards = 4;
  StringCache cache(budget, shards);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const std::string key = "key" + std::to_string(rng.NextU64Below(150));
    if (cache.Get(key) == nullptr) {
      PutStr(&cache, key, std::string(100, 'x'), 100);
    }
  }
  const CacheStats stats = cache.Stats();
  EXPECT_LE(stats.bytes, budget + shards);
  EXPECT_GT(stats.entries, 0u);
  EXPECT_GT(stats.insertions, 0u);
}

TEST(ShardedLruCacheTest, OversizedEntryRejected) {
  StringCache cache(256, 1);
  PutStr(&cache, "big", std::string(1000, 'x'), 1000);
  EXPECT_EQ(cache.Get("big"), nullptr);
  EXPECT_EQ(cache.Stats().rejected, 1u);
  EXPECT_EQ(cache.Stats().entries, 0u);
}

TEST(ShardedLruCacheTest, ZeroBudgetDisablesEverything) {
  StringCache cache(0, 8);
  EXPECT_FALSE(cache.enabled());
  PutStr(&cache, "k", "v", 10);
  EXPECT_EQ(cache.Get("k"), nullptr);
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.lookups(), 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(ShardedLruCacheTest, ClearDropsEntriesKeepsCounters) {
  StringCache cache(1 << 20, 2);
  PutStr(&cache, "k", "v", 10);
  ASSERT_NE(cache.Get("k"), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.Get("k"), nullptr);
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.hits, 1u);  // pre-clear counters survive
}

// --- Patch fingerprints --------------------------------------------------

Image SolidImage(int w, int h, uint8_t value) {
  Image img(w, h, 3);
  for (auto& b : img.bytes()) b = value;
  return img;
}

TEST(FingerprintTest, StableAcrossCopies) {
  Patch p;
  p.set_pixels(SolidImage(8, 6, 42));
  p.set_bbox(nn::BBox{1, 2, 9, 8});
  p.set_id(7);
  p.mutable_meta().Set("label", "car");
  const Patch copy = p;
  EXPECT_EQ(p.Fingerprint(), copy.Fingerprint());
}

TEST(FingerprintTest, IndependentOfIdAndMeta) {
  Patch a;
  a.set_pixels(SolidImage(8, 6, 42));
  a.set_bbox(nn::BBox{1, 2, 9, 8});
  Patch b = a;
  b.set_id(999);
  b.mutable_meta().Set("score", 0.5);
  b.set_features(Tensor::FromVector({1.0f, 2.0f}));
  // Annotations don't change what a model would see.
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

TEST(FingerprintTest, SensitiveToPixelsGeometryAndBox) {
  Patch base;
  base.set_pixels(SolidImage(8, 6, 42));
  base.set_bbox(nn::BBox{1, 2, 9, 8});

  Patch pixel_change = base;
  Image img = SolidImage(8, 6, 42);
  img.At(3, 3, 1) = 43;
  pixel_change.set_pixels(std::move(img));
  EXPECT_NE(base.Fingerprint(), pixel_change.Fingerprint());

  Patch box_change = base;
  box_change.set_bbox(nn::BBox{1, 2, 9, 9});
  EXPECT_NE(base.Fingerprint(), box_change.Fingerprint());

  // Same byte content, different geometry (8x6 vs 6x8).
  Patch transposed = base;
  transposed.set_pixels(SolidImage(6, 8, 42));
  EXPECT_NE(base.Fingerprint(), transposed.Fingerprint());
}

TEST(FingerprintTest, CollisionSanityOverRandomPatches) {
  Rng rng(0xf1f2f3f4);
  std::set<uint64_t> seen;
  const int kPatches = 2000;
  for (int i = 0; i < kPatches; ++i) {
    Image img(8, 8, 3);
    for (auto& b : img.bytes()) {
      b = static_cast<uint8_t>(rng.NextU64Below(256));
    }
    Patch p;
    p.set_pixels(std::move(img));
    p.set_bbox(nn::BBox{0, 0, 8, 8});
    seen.insert(p.Fingerprint());
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kPatches));
}

// --- Env knob validation -------------------------------------------------

class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_value_ = old != nullptr;
  }
  ~EnvGuard() {
    if (had_value_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  void Set(const char* value) { ::setenv(name_, value, 1); }
  void Unset() { ::unsetenv(name_); }

 private:
  const char* name_;
  std::string saved_;
  bool had_value_ = false;
};

TEST(EnvKnobTest, ValidValueParses) {
  EnvGuard guard("DEEPLENS_TEST_KNOB");
  guard.Set("12");
  EXPECT_EQ(PositiveIntFromEnv("DEEPLENS_TEST_KNOB", 5), 12u);
}

TEST(EnvKnobTest, UnsetFallsBack) {
  EnvGuard guard("DEEPLENS_TEST_KNOB");
  guard.Unset();
  EXPECT_EQ(PositiveIntFromEnv("DEEPLENS_TEST_KNOB", 5), 5u);
}

TEST(EnvKnobTest, GarbageZeroNegativeAndOverflowRejected) {
  EnvGuard guard("DEEPLENS_TEST_KNOB");
  for (const char* bad :
       {"0", "-3", "abc", "12abc", "", " 4", "99999999999999999999999"}) {
    guard.Set(bad);
    EXPECT_EQ(PositiveIntFromEnv("DEEPLENS_TEST_KNOB", 5), 5u)
        << "value: '" << bad << "'";
  }
  guard.Set("10");
  EXPECT_EQ(PositiveIntFromEnv("DEEPLENS_TEST_KNOB", 5, /*max_value=*/8), 5u);
}

TEST(EnvKnobTest, PowerOfTwoKnobClampsAndRejectsLikeNumThreads) {
  // Same rejection matrix as the DEEPLENS_NUM_THREADS knob above: every
  // garbage spelling falls back, so a typo in DEEPLENS_JOIN_PARTITIONS
  // degrades to the partition-count heuristic instead of crashing or
  // silently doing something surprising.
  EnvGuard guard("DEEPLENS_TEST_KNOB");
  for (const char* bad :
       {"0", "-3", "abc", "12abc", "", " 4", "99999999999999999999999"}) {
    guard.Set(bad);
    EXPECT_EQ(PowerOfTwoFromEnv("DEEPLENS_TEST_KNOB", 5), 5u)
        << "value: '" << bad << "'";
  }

  // Exact powers of two pass through untouched.
  for (const char* good : {"1", "2", "64", "1024"}) {
    guard.Set(good);
    EXPECT_EQ(PowerOfTwoFromEnv("DEEPLENS_TEST_KNOB", 5),
              std::strtoull(good, nullptr, 10))
        << "value: '" << good << "'";
  }

  // Non-powers clamp DOWN to the nearest power of two (with a warning)
  // rather than being rejected — the operator asked for roughly that
  // much parallelism and should get it.
  guard.Set("6");
  EXPECT_EQ(PowerOfTwoFromEnv("DEEPLENS_TEST_KNOB", 5), 4u);
  guard.Set("1000");
  EXPECT_EQ(PowerOfTwoFromEnv("DEEPLENS_TEST_KNOB", 5), 512u);

  // Values above max_value are rejected by the underlying positive-int
  // parse before any clamping happens.
  guard.Set("4096");
  EXPECT_EQ(PowerOfTwoFromEnv("DEEPLENS_TEST_KNOB", 5, /*max_value=*/256),
            5u);

  // Unset → fallback verbatim, even when the fallback itself is not a
  // power of two (0-as-auto callers rely on this).
  guard.Unset();
  EXPECT_EQ(PowerOfTwoFromEnv("DEEPLENS_TEST_KNOB", 0), 0u);
  EXPECT_EQ(PowerOfTwoFromEnv("DEEPLENS_TEST_KNOB", 5), 5u);
}

TEST(EnvKnobTest, ZeroAllowedWhenOptedIn) {
  EnvGuard guard("DEEPLENS_TEST_KNOB");
  guard.Set("0");
  EXPECT_EQ(PositiveIntFromEnv("DEEPLENS_TEST_KNOB", 5, UINT64_MAX,
                               /*allow_zero=*/true),
            0u);
}

TEST(EnvKnobTest, CacheMbKnob) {
  EnvGuard guard("DEEPLENS_CACHE_MB");
  guard.Set("8");
  EXPECT_EQ(CacheConfig::FromEnv().budget_bytes, 8u << 20);
  guard.Set("0");  // explicit disable
  EXPECT_EQ(CacheConfig::FromEnv().budget_bytes, 0u);
  guard.Set("not-a-number");
  EXPECT_EQ(CacheConfig::FromEnv().budget_bytes,
            CacheConfig::kDefaultBudgetBytes);
  guard.Set("-4");
  EXPECT_EQ(CacheConfig::FromEnv().budget_bytes,
            CacheConfig::kDefaultBudgetBytes);
}

TEST(EnvKnobTest, ChoiceKnobMatchesCaseInsensitivelyAndRejectsGarbage) {
  EnvGuard guard("DEEPLENS_TEST_KNOB");
  guard.Unset();
  EXPECT_EQ(ChoiceFromEnv("DEEPLENS_TEST_KNOB", {"aa", "bb"}, "aa"), "aa");
  guard.Set("bb");
  EXPECT_EQ(ChoiceFromEnv("DEEPLENS_TEST_KNOB", {"aa", "bb"}, "aa"), "bb");
  guard.Set("BB");  // canonical lowercase spelling comes back
  EXPECT_EQ(ChoiceFromEnv("DEEPLENS_TEST_KNOB", {"aa", "bb"}, "aa"), "bb");
  for (const char* bad : {"", " ", "cc", "bb ", " bb", "b", "aabb"}) {
    guard.Set(bad);
    EXPECT_EQ(ChoiceFromEnv("DEEPLENS_TEST_KNOB", {"aa", "bb"}, "aa"), "aa")
        << "value: '" << bad << "'";
  }
}

TEST(EnvKnobTest, CacheAdmissionKnobMatrix) {
  EnvGuard guard("DEEPLENS_CACHE_ADMISSION");
  // Unset: scan-resistant admission is the default.
  guard.Unset();
  EXPECT_EQ(CacheConfig::FromEnv().admission, CacheAdmission::kTinyLfu);
  // The two valid spellings, case-insensitively.
  for (const char* v : {"lru", "LRU", "Lru"}) {
    guard.Set(v);
    EXPECT_EQ(CacheConfig::FromEnv().admission, CacheAdmission::kLru)
        << "value: '" << v << "'";
  }
  for (const char* v : {"tinylfu", "TinyLFU", "TINYLFU"}) {
    guard.Set(v);
    EXPECT_EQ(CacheConfig::FromEnv().admission, CacheAdmission::kTinyLfu)
        << "value: '" << v << "'";
  }
  // Garbage falls back to the default rather than silently picking LRU.
  for (const char* bad : {"", "  ", "fifo", "lru,tinylfu", "tiny-lfu", "1"}) {
    guard.Set(bad);
    EXPECT_EQ(CacheConfig::FromEnv().admission, CacheAdmission::kTinyLfu)
        << "value: '" << bad << "'";
  }
  // The parsed policy is what a cache built from the config runs.
  guard.Set("lru");
  StringCache from_env(1 << 10, 1, CacheConfig::FromEnv().admission);
  EXPECT_EQ(from_env.admission(), CacheAdmission::kLru);
}

// --- InferenceCache ------------------------------------------------------

TEST(InferenceCacheTest, TypedPayloadsRoundTrip) {
  InferenceCache cache(1 << 20, 2);
  cache.Put(InferenceCache::KeyFor("m1", 1), InferenceValue{std::string("7")});
  cache.Put(InferenceCache::KeyFor("m2", 1), InferenceValue{3.5});
  cache.Put(InferenceCache::KeyFor("m3", 1),
            InferenceValue{Tensor::FromVector({1.0f, 2.0f})});
  cache.Put(InferenceCache::KeyFor("m4", 1),
            InferenceValue{std::vector<nn::Detection>(2)});

  auto text = cache.Get(InferenceCache::KeyFor("m1", 1));
  ASSERT_NE(text, nullptr);
  EXPECT_EQ(std::get<std::string>(text->payload), "7");
  auto depth = cache.Get(InferenceCache::KeyFor("m2", 1));
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(std::get<double>(depth->payload), 3.5);
  auto tensor = cache.Get(InferenceCache::KeyFor("m3", 1));
  ASSERT_NE(tensor, nullptr);
  EXPECT_EQ(std::get<Tensor>(tensor->payload).size(), 2);
  auto dets = cache.Get(InferenceCache::KeyFor("m4", 1));
  ASSERT_NE(dets, nullptr);
  EXPECT_EQ(std::get<std::vector<nn::Detection>>(dets->payload).size(), 2u);
}

TEST(InferenceCacheTest, KeysSeparateModelsFingerprintsAndVariants) {
  std::set<std::string> keys = {
      InferenceCache::KeyFor("ocr", 1), InferenceCache::KeyFor("ocr", 2),
      InferenceCache::KeyFor("depth", 1),
      InferenceCache::KeyFor("depth", 1, 240),
      InferenceCache::KeyFor("depth", 1, 480)};
  EXPECT_EQ(keys.size(), 5u);
}

// --- Video decode caching ------------------------------------------------

std::vector<Image> SyntheticFrames(int n, int w, int h) {
  Rng rng(0x5e6e7e8e);
  std::vector<Image> frames;
  frames.reserve(n);
  int x = 2, y = 2;
  for (int f = 0; f < n; ++f) {
    Image img(w, h, 3);
    for (int yy = 0; yy < h; ++yy) {
      for (int xx = 0; xx < w; ++xx) {
        img.At(xx, yy, 0) = static_cast<uint8_t>((xx * 5 + f) & 0xff);
        img.At(xx, yy, 1) = static_cast<uint8_t>((yy * 7) & 0xff);
        img.At(xx, yy, 2) = 30;
      }
    }
    // A small moving block gives P-frames real residuals.
    x = (x + 1 + static_cast<int>(rng.NextU64Below(2))) % (w - 4);
    y = (y + 1) % (h - 4);
    for (int dy = 0; dy < 4; ++dy) {
      for (int dx = 0; dx < 4; ++dx) {
        img.At(x + dx, y + dy, 0) = 255;
        img.At(x + dx, y + dy, 1) = 255;
      }
    }
    frames.push_back(std::move(img));
  }
  return frames;
}

class VideoCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dl_cache_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  void WriteVideo(const std::string& path, const std::vector<Image>& frames,
                  VideoFormat format, int gop, int clip) {
    VideoStoreOptions options;
    options.format = format;
    options.gop_size = gop;
    options.clip_frames = clip;
    auto writer = CreateVideoWriter(path, options);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (const Image& f : frames) {
      ASSERT_TRUE((*writer)->AddFrame(f).ok());
    }
    ASSERT_TRUE((*writer)->Finish().ok());
  }

  std::filesystem::path dir_;
};

TEST_F(VideoCacheTest, EncodedReadsIdenticalWithAndWithoutCache) {
  const std::vector<Image> frames = SyntheticFrames(41, 32, 24);
  WriteVideo(Path("v"), frames, VideoFormat::kEncoded, /*gop=*/8,
             /*clip=*/8);

  SegmentCache cache(8 << 20, 2);
  auto cached = OpenVideo(Path("v"), &cache);
  auto plain = OpenVideo(Path("v"));
  ASSERT_TRUE(cached.ok() && plain.ok());

  Rng rng(17);
  for (int i = 0; i < 60; ++i) {
    const int f = static_cast<int>(rng.NextU64Below(frames.size()));
    auto a = (*cached)->ReadFrame(f);
    auto b = (*plain)->ReadFrame(f);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_TRUE(a->SameShape(*b));
    EXPECT_EQ(a->bytes(), b->bytes()) << "frame " << f;
  }
  EXPECT_GT(cache.Stats().hits, 0u);
  // One full pass warms every GOP (the random reads may have skipped
  // some); after that, reads are lookup-bound: no additional decodes.
  for (int f = 0; f < static_cast<int>(frames.size()); ++f) {
    ASSERT_TRUE((*cached)->ReadFrame(f).ok());
  }
  const uint64_t decoded_before = (*cached)->frames_decoded();
  for (int f = 0; f < static_cast<int>(frames.size()); ++f) {
    ASSERT_TRUE((*cached)->ReadFrame(f).ok());
  }
  EXPECT_EQ((*cached)->frames_decoded(), decoded_before);
}

TEST_F(VideoCacheTest, EncodedReadRangeIdenticalWithCache) {
  const std::vector<Image> frames = SyntheticFrames(30, 24, 16);
  WriteVideo(Path("v"), frames, VideoFormat::kEncoded, /*gop=*/7,
             /*clip=*/8);
  SegmentCache cache(8 << 20, 2);
  auto cached = OpenVideo(Path("v"), &cache);
  auto plain = OpenVideo(Path("v"));
  ASSERT_TRUE(cached.ok() && plain.ok());
  for (const auto [lo, hi] : {std::pair<int, int>{5, 17},
                              {0, 29},
                              {28, 29},
                              {12, 12}}) {
    std::vector<std::pair<int, std::vector<uint8_t>>> a, b;
    ASSERT_TRUE((*cached)
                    ->ReadRange(lo, hi,
                                [&](int f, const Image& img) {
                                  a.emplace_back(f, img.bytes());
                                  return true;
                                })
                    .ok());
    ASSERT_TRUE((*plain)
                    ->ReadRange(lo, hi,
                                [&](int f, const Image& img) {
                                  b.emplace_back(f, img.bytes());
                                  return true;
                                })
                    .ok());
    EXPECT_EQ(a, b);
  }
}

TEST_F(VideoCacheTest, SegmentedReadsIdenticalWithAndWithoutCache) {
  const std::vector<Image> frames = SyntheticFrames(37, 24, 16);
  WriteVideo(Path("v"), frames, VideoFormat::kSegmented, /*gop=*/8,
             /*clip=*/8);
  SegmentCache cache(8 << 20, 2);
  auto cached = OpenVideo(Path("v"), &cache);
  auto plain = OpenVideo(Path("v"));
  ASSERT_TRUE(cached.ok() && plain.ok());
  Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    const int f = static_cast<int>(rng.NextU64Below(frames.size()));
    auto a = (*cached)->ReadFrame(f);
    auto b = (*plain)->ReadFrame(f);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->bytes(), b->bytes()) << "frame " << f;
  }
  const uint64_t decoded_before = (*cached)->frames_decoded();
  std::vector<int> seen;
  ASSERT_TRUE((*cached)
                  ->ReadRange(0, 36,
                              [&](int f, const Image&) {
                                seen.push_back(f);
                                return true;
                              })
                  .ok());
  EXPECT_EQ(seen.size(), 37u);
  EXPECT_EQ((*cached)->frames_decoded(), decoded_before);
}

TEST_F(VideoCacheTest, RewrittenFileDoesNotServeStaleFrames) {
  const std::vector<Image> frames_a = SyntheticFrames(16, 24, 16);
  WriteVideo(Path("v"), frames_a, VideoFormat::kEncoded, /*gop=*/4,
             /*clip=*/4);
  SegmentCache cache(8 << 20, 2);
  {
    auto reader = OpenVideo(Path("v"), &cache);
    ASSERT_TRUE(reader.ok());
    ASSERT_TRUE((*reader)->ReadFrame(9).ok());  // warms GOPs 0..2
  }
  // Same frame count, different content.
  std::vector<Image> frames_b = SyntheticFrames(16, 24, 16);
  for (Image& f : frames_b) {
    for (auto& b : f.bytes()) b = static_cast<uint8_t>(b ^ 0x55);
  }
  WriteVideo(Path("v"), frames_b, VideoFormat::kEncoded, /*gop=*/4,
             /*clip=*/4);
  auto reader = OpenVideo(Path("v"), &cache);
  auto plain = OpenVideo(Path("v"));
  ASSERT_TRUE(reader.ok() && plain.ok());
  auto a = (*reader)->ReadFrame(9);
  auto b = (*plain)->ReadFrame(9);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->bytes(), b->bytes());
}

// --- Differential: NN UDF queries, cache on vs off -----------------------

Image DigitPanel(int digit) {
  Image panel(30, 30, 3);
  for (auto& b : panel.bytes()) b = 25;
  sim::DrawDigits(&panel, nn::BBox{0, 0, 30, 30}, std::to_string(digit));
  return panel;
}

Image NoisePanel(Rng* rng) {
  Image panel(30, 30, 3);
  for (auto& b : panel.bytes()) {
    b = static_cast<uint8_t>(rng->NextU64Below(40));
  }
  return panel;
}

PatchCollection RandomPanelView(Rng* rng, int n) {
  PatchCollection patches;
  patches.reserve(n);
  for (int i = 0; i < n; ++i) {
    Patch p;
    p.set_id(static_cast<PatchId>(i + 1));
    p.set_ref(ImgRef{"panels", i, kInvalidPatchId});
    const bool digit = rng->NextU64Below(100) < 70;
    if (rng->NextU64Below(100) < 10) {
      // A few pixel-less patches: UDFs must treat them as null.
      p.set_bbox(nn::BBox{0, 0, 30, 30});
    } else if (digit) {
      p.set_pixels(DigitPanel(static_cast<int>(rng->NextU64Below(10))));
      p.set_bbox(nn::BBox{0, 0, 30, 30});
    } else {
      p.set_pixels(NoisePanel(rng));
      p.set_bbox(nn::BBox{0, 0, 30, 30});
    }
    p.mutable_meta().Set(meta_keys::kFrameNo, int64_t{i});
    p.mutable_meta().Set(meta_keys::kPatchId, static_cast<int64_t>(i + 1));
    patches.push_back(std::move(p));
  }
  return patches;
}

std::vector<uint8_t> SerializeAll(const PatchCollection& patches) {
  ByteBuffer buf;
  buf.PutU64(patches.size());
  for (const Patch& p : patches) p.SerializeInto(&buf);
  return buf.data();
}

class UdfDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("dl_cache_udf_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                .string();
    std::filesystem::remove_all(root_);
    auto db = Database::Open(root_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    CacheConfig config;
    config.budget_bytes = 16 << 20;
    db_->ConfigureCaches(config);
  }
  void TearDown() override {
    db_.reset();
    std::filesystem::remove_all(root_);
  }

  std::string root_;
  std::unique_ptr<Database> db_;
};

TEST_F(UdfDifferentialTest, OcrQueryByteIdenticalCacheOnVsOff) {
  Rng rng(0xd1f0);
  for (uint64_t seed : {1u, 2u, 3u}) {
    Rng view_rng(seed);
    ASSERT_TRUE(
        db_->RegisterView("panels", RandomPanelView(&view_rng, 40)).ok());
    const std::string target =
        std::to_string(rng.NextU64Below(10));

    Query cached_q(db_.get(), "panels");
    cached_q.Where(Eq(OcrTextUdf(0, db_->ocr(), db_->inference_cache()),
                      Lit(target)));
    auto cached_cold = cached_q.Execute();
    auto cached_warm = cached_q.Execute();

    Query plain_q(db_.get(), "panels");
    plain_q.Where(Eq(OcrTextUdf(0, db_->ocr()), Lit(target)));
    auto plain = plain_q.Execute();

    ASSERT_TRUE(cached_cold.ok() && cached_warm.ok() && plain.ok());
    EXPECT_EQ(SerializeAll(*cached_cold), SerializeAll(*plain));
    EXPECT_EQ(SerializeAll(*cached_warm), SerializeAll(*plain));
    // The warm run must actually have been served by the cache.
    EXPECT_GT(db_->inference_cache()->Stats().hits, 0u);
  }
}

TEST_F(UdfDifferentialTest, DepthAndCountAgreeCacheOnVsOff) {
  Rng view_rng(99);
  ASSERT_TRUE(
      db_->RegisterView("panels", RandomPanelView(&view_rng, 40)).ok());
  for (double threshold : {5.0, 20.0, 60.0}) {
    Query cached_q(db_.get(), "panels");
    cached_q.Where(Gt(DepthUdf(0, db_->depth_model(), 240,
                               db_->inference_cache()),
                      Lit(threshold)));
    Query plain_q(db_.get(), "panels");
    plain_q.Where(
        Gt(DepthUdf(0, db_->depth_model(), 240), Lit(threshold)));
    auto a = cached_q.Count();
    auto b = plain_q.Count();
    auto c = cached_q.Count();  // warm
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    EXPECT_EQ(*a, *b);
    EXPECT_EQ(*c, *b);
  }
}

TEST_F(UdfDifferentialTest, ExplainReportsCacheInteraction) {
  Rng view_rng(5);
  ASSERT_TRUE(
      db_->RegisterView("panels", RandomPanelView(&view_rng, 8)).ok());

  Query cached_q(db_.get(), "panels");
  cached_q.Where(Eq(OcrTextUdf(0, db_->ocr(), db_->inference_cache()),
                    Lit("7")));
  auto plan = cached_q.Explain();
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->udfs.size(), 1u);
  EXPECT_EQ(plan->udfs[0].model, model_names::kOcr);
  EXPECT_TRUE(plan->udfs[0].cached);
  EXPECT_TRUE(plan->uses_inference_cache);
  EXPECT_NE(plan->description.find("inference cache"), std::string::npos);

  Query plain_q(db_.get(), "panels");
  plain_q.Where(Eq(OcrTextUdf(0, db_->ocr()), Lit("7")));
  auto plain_plan = plain_q.Explain();
  ASSERT_TRUE(plain_plan.ok());
  EXPECT_FALSE(plain_plan->uses_inference_cache);
  EXPECT_NE(plain_plan->description.find("uncached"), std::string::npos);

  Query no_udf(db_.get(), "panels");
  no_udf.Where(Eq(Attr(meta_keys::kFrameNo), Lit(int64_t{3})));
  auto no_udf_plan = no_udf.Explain();
  ASSERT_TRUE(no_udf_plan.ok());
  EXPECT_TRUE(no_udf_plan->udfs.empty());
  EXPECT_FALSE(no_udf_plan->uses_inference_cache);
}

TEST_F(UdfDifferentialTest, EtlRerunIsServedByCacheAndIdentical) {
  // Two identical OCR transformer runs over the same pixels: the second
  // must be cache-served and produce identical annotations.
  Rng view_rng(1234);
  const PatchCollection panels = RandomPanelView(&view_rng, 30);

  auto run = [&]() -> PatchCollection {
    auto source = MakeVectorSource(panels);
    auto ocr = MakeOcrTransformer(std::move(source), db_->ocr(), nullptr,
                                  db_->inference_cache());
    auto out = CollectPatches(ocr.get());
    DL_CHECK_OK(out.status());
    return std::move(out).value();
  };
  const PatchCollection first = run();
  const CacheStats after_first = db_->inference_cache()->Stats();
  const PatchCollection second = run();
  const CacheStats after_second = db_->inference_cache()->Stats();

  EXPECT_EQ(SerializeAll(first), SerializeAll(second));
  EXPECT_GT(after_second.hits, after_first.hits);
  // No new inference happened on the second run.
  EXPECT_EQ(after_second.insertions, after_first.insertions);
}

// --- Eviction under contention (runs under TSan in CI) -------------------

TEST(CacheContentionTest, ConcurrentMixedWorkloadStaysConsistent) {
  // Budget small enough that the workload constantly evicts.
  const size_t budget = 16 << 10;
  StringCache cache(budget, 4);
  const int kThreads = 8;
  const int kOpsPerThread = 3000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      Rng rng(static_cast<uint64_t>(t) * 7919 + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int k = static_cast<int>(rng.NextU64Below(200));
        const std::string key = "key" + std::to_string(k);
        if (rng.NextU64Below(2) == 0) {
          PutStr(&cache, key, "value-of-" + std::to_string(k), 64);
        } else {
          auto hit = cache.Get(key);
          if (hit != nullptr) {
            // A hit must always round-trip the value for its key.
            EXPECT_EQ(*hit, "value-of-" + std::to_string(k));
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const CacheStats stats = cache.Stats();
  EXPECT_LE(stats.bytes, budget + stats.shards);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.lookups(), stats.hits + stats.misses);
  // Every resident entry still round-trips.
  for (int k = 0; k < 200; ++k) {
    auto hit = cache.Get("key" + std::to_string(k));
    if (hit != nullptr) {
      EXPECT_EQ(*hit, "value-of-" + std::to_string(k));
    }
  }
}

TEST(CacheContentionTest, ConcurrentInferenceCacheSharedByWorkers) {
  // Morsel-worker shape: many threads memoizing the same small key space
  // concurrently; every hit must carry the payload its key implies.
  InferenceCache cache(1 << 20, 8);
  const int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      Rng rng(static_cast<uint64_t>(t) + 42);
      for (int i = 0; i < 2000; ++i) {
        const uint64_t fp = rng.NextU64Below(64);
        const std::string key = InferenceCache::KeyFor("ocr", fp);
        if (auto hit = cache.Get(key)) {
          EXPECT_EQ(std::get<std::string>(hit->payload),
                    std::to_string(fp));
        } else {
          cache.Put(key, InferenceValue{std::to_string(fp)});
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const CacheStats stats = cache.Stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_LE(stats.entries, 64u);
}

}  // namespace
}  // namespace deeplens
