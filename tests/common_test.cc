// Unit tests for common/: Status, Result, byte serialization, checksums,
// RNG determinism, string helpers, and the thread pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <set>
#include <vector>

#include "common/bytes.h"
#include "common/checksum.h"
#include "common/env.h"
#include "common/rng.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "storage/columnar/format.h"

namespace deeplens {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, CopiesShareState) {
  Status a = Status::IOError("disk on fire");
  Status b = a;
  EXPECT_TRUE(b.IsIOError());
  EXPECT_EQ(b.message(), "disk on fire");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 10; ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, SaturatedIsTyped) {
  Status s = Status::Saturated("pool full");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsSaturated());
  EXPECT_EQ(s.ToString(), "Saturated: pool full");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> UseMacros(int x) {
  DL_ASSIGN_OR_RETURN(int half, HalveEven(x));
  return half + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = UseMacros(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  auto err = UseMacros(7);
  EXPECT_TRUE(err.status().IsInvalidArgument());
}

TEST(SliceTest, ComparisonIsLexicographic) {
  EXPECT_LT(Slice("abc").Compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").Compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").Compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").Compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("") == Slice(""));
}

TEST(SliceTest, StartsWithAndPrefixRemoval) {
  Slice s("hello world");
  EXPECT_TRUE(s.StartsWith(Slice("hello")));
  EXPECT_FALSE(s.StartsWith(Slice("world")));
  s.RemovePrefix(6);
  EXPECT_EQ(s.ToString(), "world");
}

TEST(BytesTest, FixedWidthRoundTrip) {
  ByteBuffer buf;
  buf.PutU8(0xAB);
  buf.PutU16(0xBEEF);
  buf.PutU32(0xDEADBEEF);
  buf.PutU64(0x0123456789ABCDEFull);
  buf.PutF32(3.25f);
  buf.PutF64(-1.5e300);
  ByteReader r(buf.AsSlice());
  EXPECT_EQ(r.GetU8().value(), 0xAB);
  EXPECT_EQ(r.GetU16().value(), 0xBEEF);
  EXPECT_EQ(r.GetU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64().value(), 0x0123456789ABCDEFull);
  EXPECT_FLOAT_EQ(r.GetF32().value(), 3.25f);
  EXPECT_DOUBLE_EQ(r.GetF64().value(), -1.5e300);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, UnderflowIsCorruption) {
  ByteBuffer buf;
  buf.PutU8(1);
  ByteReader r(buf.AsSlice());
  EXPECT_TRUE(r.GetU32().status().IsCorruption());
}

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, EncodesAndDecodes) {
  ByteBuffer buf;
  buf.PutVarint(GetParam());
  ByteReader r(buf.AsSlice());
  EXPECT_EQ(r.GetVarint().value(), GetParam());
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(
    Values, VarintRoundTrip,
    ::testing::Values(0ull, 1ull, 127ull, 128ull, 300ull, 16383ull,
                      16384ull, (1ull << 32), ~0ull));

class SignedVarintRoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(SignedVarintRoundTrip, EncodesAndDecodes) {
  ByteBuffer buf;
  buf.PutSignedVarint(GetParam());
  ByteReader r(buf.AsSlice());
  EXPECT_EQ(r.GetSignedVarint().value(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Values, SignedVarintRoundTrip,
    ::testing::Values(0, 1, -1, 63, -64, 64, -65, 1000000, -1000000,
                      INT64_MAX, INT64_MIN));

TEST(BytesTest, LengthPrefixedRoundTrip) {
  ByteBuffer buf;
  buf.PutLengthPrefixed(Slice("hello"));
  buf.PutLengthPrefixed(Slice(""));
  buf.PutLengthPrefixed(Slice("world!"));
  ByteReader r(buf.AsSlice());
  EXPECT_EQ(r.GetLengthPrefixed().value().ToString(), "hello");
  EXPECT_EQ(r.GetLengthPrefixed().value().ToString(), "");
  EXPECT_EQ(r.GetLengthPrefixed().value().ToString(), "world!");
}

TEST(KeyEncodingTest, U64OrderPreserved) {
  std::vector<uint64_t> values = {0, 1, 255, 256, 1ull << 40, ~0ull};
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    EXPECT_LT(EncodeKeyU64(values[i]), EncodeKeyU64(values[i + 1]));
  }
  EXPECT_EQ(DecodeKeyU64(Slice(EncodeKeyU64(1ull << 40))).value(),
            1ull << 40);
}

TEST(KeyEncodingTest, I64OrderPreservedAcrossSign) {
  std::vector<int64_t> values = {INT64_MIN, -1000, -1, 0, 1, 1000,
                                 INT64_MAX};
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    EXPECT_LT(EncodeKeyI64(values[i]), EncodeKeyI64(values[i + 1]))
        << values[i] << " vs " << values[i + 1];
  }
  for (int64_t v : values) {
    EXPECT_EQ(DecodeKeyI64(Slice(EncodeKeyI64(v))).value(), v);
  }
}

TEST(KeyEncodingTest, F64OrderPreservedAcrossSign) {
  std::vector<double> values = {-1e300, -2.5, -1e-10, 0.0,
                                1e-10,  1.0,  2.5,    1e300};
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    EXPECT_LT(EncodeKeyF64(values[i]), EncodeKeyF64(values[i + 1]))
        << values[i] << " vs " << values[i + 1];
  }
  for (double v : values) {
    EXPECT_EQ(DecodeKeyF64(Slice(EncodeKeyF64(v))).value(), v);
  }
}

TEST(ChecksumTest, Crc32cKnownValue) {
  // CRC32C("123456789") is the classic check value.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
}

TEST(ChecksumTest, DetectsCorruption) {
  std::string data = "the quick brown fox";
  const uint32_t good = Crc32c(data.data(), data.size());
  data[3] ^= 1;
  EXPECT_NE(Crc32c(data.data(), data.size()), good);
}

TEST(ChecksumTest, Fnv1aSpreadsBits) {
  std::set<uint64_t> hashes;
  for (int i = 0; i < 1000; ++i) {
    std::string key = "key" + std::to_string(i);
    hashes.insert(Fnv1a64(key.data(), key.size()));
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(99);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(StringUtilTest, SplitAndJoin) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(JoinStrings(parts, ","), "a,b,,c");
  EXPECT_EQ(SplitString("", ',').size(), 1u);
}

TEST(StringUtilTest, CaseAndAffixes) {
  EXPECT_EQ(ToLowerAscii("MiXeD123"), "mixed123");
  EXPECT_TRUE(StartsWith("deeplens", "deep"));
  EXPECT_TRUE(EndsWith("deeplens", "lens"));
  EXPECT_FALSE(EndsWith("x", "lens"));
}

TEST(StringUtilTest, FormatAndHumanBytes) {
  EXPECT_EQ(StringFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(HumanBytes(3ull * 1024 * 1024 * 1024), "3.00 GB");
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.Submit([&counter] { counter++; }));
  }
  for (auto& f : futs) f.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, [&](size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(5, 5, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

// --- Serving env knobs ----------------------------------------------------
// The tenant priority map is all-or-nothing: one malformed entry rejects
// the whole spec (a half-applied map silently misweights tenants), and
// rejection must fall back to the default, never crash or half-parse.

class WeightMapEnvTest : public ::testing::Test {
 protected:
  static constexpr const char* kVar = "DEEPLENS_TEST_WEIGHT_MAP";
  void TearDown() override { unsetenv(kVar); }

  std::map<std::string, uint64_t> Parse(const char* value) {
    setenv(kVar, value, 1);
    return WeightMapFromEnv(kVar, /*max_weight=*/1000,
                            {{"fallback", 7}});
  }
  bool Rejected(const char* value) {
    auto parsed = Parse(value);
    return parsed.size() == 1 && parsed.count("fallback") == 1 &&
           parsed.at("fallback") == 7;
  }
};

TEST_F(WeightMapEnvTest, UnsetUsesFallback) {
  unsetenv(kVar);
  const auto parsed =
      WeightMapFromEnv(kVar, 1000, {{"fallback", 7}});
  EXPECT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed.at("fallback"), 7u);
}

TEST_F(WeightMapEnvTest, ValidSpecParses) {
  const auto parsed = Parse("dash=4,batch=1,archive=32");
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed.at("dash"), 4u);
  EXPECT_EQ(parsed.at("batch"), 1u);
  EXPECT_EQ(parsed.at("archive"), 32u);
}

TEST_F(WeightMapEnvTest, SingleEntryAndMaxWeight) {
  const auto parsed = Parse("solo=1000");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed.at("solo"), 1000u);
}

TEST_F(WeightMapEnvTest, RejectionMatrix) {
  EXPECT_TRUE(Rejected(""));                  // empty spec
  EXPECT_TRUE(Rejected("dash"));              // no '='
  EXPECT_TRUE(Rejected("=4"));                // empty key
  EXPECT_TRUE(Rejected("dash="));             // empty weight
  EXPECT_TRUE(Rejected("dash=4,"));           // trailing comma = empty entry
  EXPECT_TRUE(Rejected(",dash=4"));           // leading comma
  EXPECT_TRUE(Rejected("dash=4,,batch=1"));   // empty middle entry
  EXPECT_TRUE(Rejected("dash=0"));            // zero weight
  EXPECT_TRUE(Rejected("dash=-4"));           // negative weight
  EXPECT_TRUE(Rejected("dash=4.5"));          // non-integer weight
  EXPECT_TRUE(Rejected("dash=1001"));         // exceeds max_weight
  EXPECT_TRUE(Rejected("dash=99999999999999999999"));  // overflow
  EXPECT_TRUE(Rejected("dash=4,dash=8"));     // duplicate key
  EXPECT_TRUE(Rejected("da sh=4"));           // whitespace in key
  EXPECT_TRUE(Rejected("dash\t=4"));          // control byte in key
  EXPECT_TRUE(Rejected("dash=4=8"));          // stray '=' lands in weight
  EXPECT_TRUE(Rejected(" dash=4"));           // leading space in key
}

TEST_F(WeightMapEnvTest, GoodEntriesDoNotSurviveABadOne) {
  // All-or-nothing: the valid "dash=4" must not leak through when a
  // later entry is malformed.
  const auto parsed = Parse("dash=4,batch=zero");
  EXPECT_EQ(parsed.count("dash"), 0u);
  EXPECT_EQ(parsed.at("fallback"), 7u);
}

class ServingKnobTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("DEEPLENS_MAX_CONCURRENT_QUERIES");
    unsetenv("DEEPLENS_ADMISSION_WAIT_MS");
    unsetenv("DEEPLENS_TENANT_PRIORITY");
    unsetenv("DEEPLENS_DEVICE_BATCH_SIZE");
    unsetenv("DEEPLENS_BATCH_WAIT_US");
  }
};

TEST_F(ServingKnobTest, MaxConcurrentQueriesMatrix) {
  const uint64_t kDefault = 6;
  const struct {
    const char* value;
    uint64_t expected;
  } kCases[] = {
      {"8", 8},          // plain valid
      {"0", 0},          // zero allowed: disables the gate
      {"-3", kDefault},  // negative rejected
      {"8q", kDefault},  // trailing garbage rejected
      {"", kDefault},    // empty rejected
      {" 8", kDefault},  // leading whitespace rejected (bare decimal only)
      {"0x8", kDefault},
  };
  for (const auto& c : kCases) {
    setenv("DEEPLENS_MAX_CONCURRENT_QUERIES", c.value, 1);
    EXPECT_EQ(PositiveIntFromEnv("DEEPLENS_MAX_CONCURRENT_QUERIES", kDefault,
                                 1u << 20, /*allow_zero=*/true),
              c.expected)
        << "value='" << c.value << "'";
  }
}

TEST_F(ServingKnobTest, AdmissionWaitMsMatrix) {
  const uint64_t kDefault = 10000;
  setenv("DEEPLENS_ADMISSION_WAIT_MS", "0", 1);  // fail-fast is legal
  EXPECT_EQ(PositiveIntFromEnv("DEEPLENS_ADMISSION_WAIT_MS", kDefault,
                               86400000ull, /*allow_zero=*/true),
            0u);
  setenv("DEEPLENS_ADMISSION_WAIT_MS", "250", 1);
  EXPECT_EQ(PositiveIntFromEnv("DEEPLENS_ADMISSION_WAIT_MS", kDefault,
                               86400000ull, /*allow_zero=*/true),
            250u);
  // Beyond a day is a typo, not a policy.
  setenv("DEEPLENS_ADMISSION_WAIT_MS", "86400001", 1);
  EXPECT_EQ(PositiveIntFromEnv("DEEPLENS_ADMISSION_WAIT_MS", kDefault,
                               86400000ull, /*allow_zero=*/true),
            kDefault);
}

TEST_F(ServingKnobTest, DeviceBatchSizeMatrix) {
  const uint64_t kDefault = 0;  // batching off
  const struct {
    const char* value;
    uint64_t expected;
  } kCases[] = {
      {"16", 16},          // plain valid
      {"0", 0},            // zero allowed: disables the former
      {"4096", 4096},      // at the cap
      {"4097", kDefault},  // beyond the cap rejected
      {"-4", kDefault},    // negative rejected
      {"4x", kDefault},    // trailing garbage rejected
      {"", kDefault},      // empty rejected
  };
  for (const auto& c : kCases) {
    setenv("DEEPLENS_DEVICE_BATCH_SIZE", c.value, 1);
    EXPECT_EQ(PositiveIntFromEnv("DEEPLENS_DEVICE_BATCH_SIZE", kDefault, 4096,
                                 /*allow_zero=*/true),
              c.expected)
        << "value='" << c.value << "'";
  }
}

TEST_F(ServingKnobTest, BatchWaitUsMatrix) {
  const uint64_t kDefault = 2000;
  const struct {
    const char* value;
    uint64_t expected;
  } kCases[] = {
      {"500", 500},          // plain valid
      {"0", 0},              // zero allowed: flush immediately
      {"60000000", 60000000},  // at the one-minute cap
      {"60000001", kDefault},  // a "deadline" past a minute is a hang
      {"2ms", kDefault},       // units rejected (bare microseconds only)
      {"", kDefault},
  };
  for (const auto& c : kCases) {
    setenv("DEEPLENS_BATCH_WAIT_US", c.value, 1);
    EXPECT_EQ(PositiveIntFromEnv("DEEPLENS_BATCH_WAIT_US", kDefault,
                                 60000000ull, /*allow_zero=*/true),
              c.expected)
        << "value='" << c.value << "'";
  }
}

// --- Columnar storage knobs ----------------------------------------------
// The chunk-size and prefetch knobs size buffers directly, so a garbage
// value must fall back, never size a zero-row chunk or an unbounded
// queue. The format choice knob is closed-set with case-folding.

class ColumnarKnobTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("DEEPLENS_COLUMNAR_CHUNK_ROWS");
    unsetenv("DEEPLENS_PREFETCH_DEPTH");
    unsetenv("DEEPLENS_VIEW_FORMAT");
  }
};

TEST_F(ColumnarKnobTest, ChunkRowsMatrix) {
  const struct {
    const char* value;
    size_t expected;
  } kCases[] = {
      {"1", 1},            // minimum legal chunk
      {"8192", 8192},      // the default, spelled out
      {"65536", 65536},    // max
      {"0", columnar::kDefaultChunkRows},      // zero-row chunks illegal
      {"65537", columnar::kDefaultChunkRows},  // beyond kMaxChunkRows
      {"-1", columnar::kDefaultChunkRows},
      {"4k", columnar::kDefaultChunkRows},     // no suffixes
      {"", columnar::kDefaultChunkRows},
      {"  16", columnar::kDefaultChunkRows},   // bare decimal only
  };
  for (const auto& c : kCases) {
    setenv("DEEPLENS_COLUMNAR_CHUNK_ROWS", c.value, 1);
    EXPECT_EQ(columnar::ColumnarChunkRowsFromEnv(), c.expected)
        << "value='" << c.value << "'";
  }
  unsetenv("DEEPLENS_COLUMNAR_CHUNK_ROWS");
  EXPECT_EQ(columnar::ColumnarChunkRowsFromEnv(),
            columnar::kDefaultChunkRows);
}

TEST_F(ColumnarKnobTest, PrefetchDepthMatrix) {
  const struct {
    const char* value;
    size_t expected;
  } kCases[] = {
      {"0", 0},   // legal: disables the I/O thread (synchronous loads)
      {"1", 1},
      {"64", 64},  // kMaxPrefetchDepth
      {"65", columnar::kDefaultPrefetchDepth},  // beyond the cap
      {"-2", columnar::kDefaultPrefetchDepth},
      {"two", columnar::kDefaultPrefetchDepth},
      {"4 ", columnar::kDefaultPrefetchDepth},  // trailing garbage
      {"", columnar::kDefaultPrefetchDepth},
  };
  for (const auto& c : kCases) {
    setenv("DEEPLENS_PREFETCH_DEPTH", c.value, 1);
    EXPECT_EQ(columnar::PrefetchDepthFromEnv(), c.expected)
        << "value='" << c.value << "'";
  }
  unsetenv("DEEPLENS_PREFETCH_DEPTH");
  EXPECT_EQ(columnar::PrefetchDepthFromEnv(),
            columnar::kDefaultPrefetchDepth);
}

TEST_F(ColumnarKnobTest, ViewFormatMatrix) {
  const struct {
    const char* value;
    const char* expected;
  } kCases[] = {
      {"columnar", "columnar"},
      {"legacy", "legacy"},
      {"LEGACY", "legacy"},    // case-insensitive, canonical returned
      {"Columnar", "columnar"},
      {"parquet", "columnar"},  // outside the closed set -> default
      {"", "columnar"},
      {"legacy ", "columnar"},  // trailing space is not a match
  };
  for (const auto& c : kCases) {
    setenv("DEEPLENS_VIEW_FORMAT", c.value, 1);
    EXPECT_EQ(columnar::ViewFormatFromEnv(), c.expected)
        << "value='" << c.value << "'";
  }
  unsetenv("DEEPLENS_VIEW_FORMAT");
  EXPECT_EQ(columnar::ViewFormatFromEnv(), "columnar");
}

// --- Optimizer knobs ------------------------------------------------------
// DEEPLENS_CASCADE_THRESHOLD is the repo's first float knob: a garbage or
// out-of-range value must fall back to 1.0 (cascades off), because a
// half-parsed threshold silently trades accuracy. The plan-cache size
// knob goes through the standard integer path with 0 = disabled.

class OptimizerKnobTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("DEEPLENS_CASCADE_THRESHOLD");
    unsetenv("DEEPLENS_PLAN_CACHE_ENTRIES");
  }
};

TEST_F(OptimizerKnobTest, CascadeThresholdMatrix) {
  const double kDefault = 1.0;
  const struct {
    const char* value;
    double expected;
  } kCases[] = {
      {"0.25", 0.25},      // plain valid
      {"1.0", 1.0},        // upper bound inclusive
      {"0", 0.0},          // lower bound inclusive, integer form
      {"1", 1.0},          // integer form
      {"0.", 0.0},         // trailing dot is a bare decimal
      {"", kDefault},      // empty rejected
      {" 0.5", kDefault},  // leading whitespace rejected
      {"0.5 ", kDefault},  // trailing whitespace rejected
      {"0.5x", kDefault},  // trailing garbage rejected
      {"-0.1", kDefault},  // below range rejected
      {"1.5", kDefault},   // above range rejected
      {"nan", kDefault},   // not a bare decimal
      {"inf", kDefault},
      {"1e-1", kDefault},  // scientific notation rejected
      {"0x1p-1", kDefault},  // hex float rejected
      {"0,5", kDefault},   // locale comma rejected
      {".5", kDefault},    // leading dot: digits required before '.'
      {"0..5", kDefault},  // double dot
  };
  for (const auto& c : kCases) {
    setenv("DEEPLENS_CASCADE_THRESHOLD", c.value, 1);
    EXPECT_EQ(BoundedDoubleFromEnv("DEEPLENS_CASCADE_THRESHOLD", kDefault,
                                   0.0, 1.0),
              c.expected)
        << "value='" << c.value << "'";
  }
  unsetenv("DEEPLENS_CASCADE_THRESHOLD");
  EXPECT_EQ(
      BoundedDoubleFromEnv("DEEPLENS_CASCADE_THRESHOLD", kDefault, 0.0, 1.0),
      kDefault);
}

TEST_F(OptimizerKnobTest, PlanCacheEntriesMatrix) {
  const uint64_t kDefault = 128;
  const struct {
    const char* value;
    uint64_t expected;
  } kCases[] = {
      {"64", 64},        // plain valid
      {"1", 1},          // minimum useful capacity
      {"0", 0},          // zero allowed: disables memoization
      {"-1", kDefault},  // negative rejected
      {"8q", kDefault},  // trailing garbage rejected
      {"", kDefault},    // empty rejected
      {" 8", kDefault},  // leading whitespace rejected
      {"0x8", kDefault},
      {"99999999999999999999", kDefault},  // overflow
      {"2097152", kDefault},               // beyond the 2^20 cap
  };
  for (const auto& c : kCases) {
    setenv("DEEPLENS_PLAN_CACHE_ENTRIES", c.value, 1);
    EXPECT_EQ(PositiveIntFromEnv("DEEPLENS_PLAN_CACHE_ENTRIES", kDefault,
                                 1u << 20, /*allow_zero=*/true),
              c.expected)
        << "value='" << c.value << "'";
  }
}

}  // namespace
}  // namespace deeplens
