// Unit tests for storage/columnar/: stream-vbyte codec framing, the
// chunked writer/reader round-trip (byte-identical to the legacy
// RecordStore format across randomized, NULL-heavy, empty, and one-chunk
// views), zone-map pruning equivalence against unpruned scans, torn-tail
// and corrupt-chunk recovery to typed Corruption, and the async
// decode-ahead loader (concurrent readers, byte budget, depth knob).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include "common/rng.h"
#include "core/database.h"
#include "core/planner.h"
#include "etl/materialize.h"
#include "exec/expression.h"
#include "storage/columnar/async_loader.h"
#include "storage/columnar/columnar_file.h"
#include "storage/columnar/encoding.h"
#include "storage/columnar/format.h"

namespace deeplens {
namespace {

class ColumnarTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dl_columnar_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    unsetenv("DEEPLENS_COLUMNAR_CHUNK_ROWS");
    unsetenv("DEEPLENS_PREFETCH_DEPTH");
    unsetenv("DEEPLENS_VIEW_FORMAT");
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

std::string SerializePatch(const Patch& p) {
  ByteBuffer buf;
  p.SerializeInto(&buf);
  const Slice s = buf.AsSlice();
  return std::string(reinterpret_cast<const char*>(s.data()), s.size());
}

// Byte-identical equality: the strongest round-trip check the format can
// offer, covering every field including float bit patterns.
void ExpectSamePatches(const PatchCollection& a, const PatchCollection& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(SerializePatch(a[i]), SerializePatch(b[i]))
        << "patch " << i << " (id " << a[i].id() << ")";
  }
}

Image NoisyImage(int w, int h, uint64_t seed) {
  Image img(w, h, 3);
  Rng rng(seed);
  for (auto& b : img.bytes()) b = static_cast<uint8_t>(rng.NextU64());
  return img;
}

// A randomized patch exercising every column encoder: int/float/string
// meta (some keys missing, some explicitly null, one key mixed-type),
// pixels and features present on a subset of rows.
Patch RandomPatch(PatchId id, Rng* rng, bool null_heavy = false) {
  Patch p;
  p.set_id(id);
  p.set_ref(ImgRef{"cam" + std::to_string(rng->NextU64Below(3)),
                   static_cast<int>(rng->NextInt(0, 5000)),
                   kInvalidPatchId});
  p.set_bbox(nn::BBox{static_cast<int>(rng->NextInt(-50, 50)),
                      static_cast<int>(rng->NextInt(-50, 50)),
                      static_cast<int>(rng->NextInt(51, 600)),
                      static_cast<int>(rng->NextInt(51, 600))});
  const uint64_t missing_bias = null_heavy ? 2 : 8;
  if (rng->NextU64Below(10) < missing_bias) {
    p.mutable_meta().Set("label", std::string(rng->NextU64Below(2) == 0
                                                  ? "car"
                                                  : "person"));
  }
  if (rng->NextU64Below(10) < missing_bias) {
    p.mutable_meta().Set("score", rng->NextDouble());
  }
  if (rng->NextU64Below(10) < missing_bias) {
    p.mutable_meta().Set("frameno", rng->NextInt(0, 100));
  }
  if (rng->NextU64Below(8) == 0) {
    p.mutable_meta().Set("odd", MetaValue());  // explicit null
  } else if (rng->NextU64Below(8) == 0) {
    // Mixed-type column: int rows and string rows force the kTagMixed
    // row-serialized fallback.
    if (rng->NextU64Below(2) == 0) {
      p.mutable_meta().Set("odd", rng->NextInt(-10, 10));
    } else {
      p.mutable_meta().Set("odd", std::string("str"));
    }
  }
  if (rng->NextU64Below(4) == 0) {
    p.set_pixels(NoisyImage(static_cast<int>(3 + rng->NextU64Below(6)),
                            static_cast<int>(3 + rng->NextU64Below(6)),
                            rng->NextU64()));
  }
  if (rng->NextU64Below(3) == 0) {
    std::vector<float> f(4 + rng->NextU64Below(5));
    for (auto& v : f) v = static_cast<float>(rng->NextDouble());
    p.set_features(Tensor::FromVector(std::move(f)));
  }
  return p;
}

PatchCollection RandomPatches(size_t n, uint64_t seed,
                              bool null_heavy = false) {
  Rng rng(seed);
  PatchCollection out;
  PatchId id = 0;
  for (size_t i = 0; i < n; ++i) {
    id += 1 + rng.NextU64Below(7);  // gaps between ids
    out.push_back(RandomPatch(id, &rng, null_heavy));
  }
  return out;
}

// --- Stream-vbyte codec ---------------------------------------------------

TEST(SvbCodecTest, U32RoundTripAllMagnitudes) {
  Rng rng(11);
  std::vector<uint32_t> values;
  for (int i = 0; i < 4097; ++i) {  // odd count: exercises the tail group
    const int bytes = static_cast<int>(rng.NextU64Below(4)) + 1;
    values.push_back(static_cast<uint32_t>(
        rng.NextU64() & ((1ull << (8 * bytes)) - 1)));
  }
  ByteBuffer buf;
  columnar::SvbEncodeU32Block(values.data(), values.size(), &buf);
  ByteReader reader(buf.AsSlice());
  std::vector<uint32_t> decoded;
  ASSERT_TRUE(columnar::SvbDecodeU32Block(&reader, values.size(), &decoded)
                  .ok());
  EXPECT_EQ(decoded, values);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SvbCodecTest, U64RoundTripAndEmpty) {
  Rng rng(12);
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(rng.NextU64() >> rng.NextU64Below(64));
  }
  ByteBuffer buf;
  columnar::SvbEncodeU64Block(values.data(), values.size(), &buf);
  ByteReader reader(buf.AsSlice());
  std::vector<uint64_t> decoded;
  ASSERT_TRUE(columnar::SvbDecodeU64Block(&reader, values.size(), &decoded)
                  .ok());
  EXPECT_EQ(decoded, values);

  ByteBuffer empty;
  columnar::SvbEncodeU64Block(nullptr, 0, &empty);
  ByteReader er(empty.AsSlice());
  std::vector<uint64_t> none;
  ASSERT_TRUE(columnar::SvbDecodeU64Block(&er, 0, &none).ok());
  EXPECT_TRUE(none.empty());
}

TEST(SvbCodecTest, CorruptFramingIsTypedCorruption) {
  std::vector<uint32_t> values{1, 300, 70000, 0x01020304};
  ByteBuffer buf;
  columnar::SvbEncodeU32Block(values.data(), values.size(), &buf);

  // Truncated data stream.
  ByteReader truncated(Slice(buf.AsSlice().data(), buf.size() - 2));
  std::vector<uint32_t> out;
  Status st = columnar::SvbDecodeU32Block(&truncated, 4, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);

  // Count exceeding the caller's bound: a fuzz-bomb header must not
  // drive an allocation.
  ByteReader bounded(buf.AsSlice());
  st = columnar::SvbDecodeU32Block(&bounded, 3, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

// --- Writer / reader round-trip -------------------------------------------

TEST_F(ColumnarTest, MultiChunkRoundTripIsByteIdentical) {
  const PatchCollection patches = RandomPatches(333, 42);
  columnar::ColumnarWriterOptions options;
  options.chunk_rows = 64;  // 6 chunks
  auto writer =
      columnar::ColumnarWriter::Open(Path("v.col"), options).value();
  for (const Patch& p : patches) ASSERT_TRUE(writer->Append(p).ok());
  ASSERT_TRUE(writer->Commit().ok());

  auto reader = columnar::ColumnarReader::Open(Path("v.col")).value();
  EXPECT_EQ(reader->total_rows(), patches.size());
  EXPECT_EQ(reader->num_chunks(), (patches.size() + 63) / 64);
  ExpectSamePatches(reader->ReadAll().value(), patches);
}

TEST_F(ColumnarTest, AppendAfterReopenKeepsOldRows) {
  const PatchCollection patches = RandomPatches(100, 7);
  columnar::ColumnarWriterOptions options;
  options.chunk_rows = 16;
  {
    auto writer =
        columnar::ColumnarWriter::Open(Path("v.col"), options).value();
    for (size_t i = 0; i < 50; ++i) ASSERT_TRUE(writer->Append(patches[i]).ok());
    ASSERT_TRUE(writer->Commit().ok());
  }
  {
    auto writer =
        columnar::ColumnarWriter::Open(Path("v.col"), options).value();
    for (size_t i = 50; i < patches.size(); ++i) {
      ASSERT_TRUE(writer->Append(patches[i]).ok());
    }
    ASSERT_TRUE(writer->Commit().ok());
  }
  auto reader = columnar::ColumnarReader::Open(Path("v.col")).value();
  ExpectSamePatches(reader->ReadAll().value(), patches);
}

TEST_F(ColumnarTest, NonAscendingIdIsRejected) {
  auto writer = columnar::ColumnarWriter::Open(Path("v.col")).value();
  Rng rng(1);
  ASSERT_TRUE(writer->Append(RandomPatch(10, &rng)).ok());
  Status st = writer->Append(RandomPatch(10, &rng));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(writer->Append(RandomPatch(3, &rng)).ok());
}

TEST_F(ColumnarTest, EmptyFileIsValidAndEmpty) {
  {
    auto writer = columnar::ColumnarWriter::Open(Path("v.col")).value();
    ASSERT_TRUE(writer->Commit().ok());
  }
  auto reader = columnar::ColumnarReader::Open(Path("v.col")).value();
  EXPECT_EQ(reader->total_rows(), 0u);
  EXPECT_EQ(reader->num_chunks(), 0u);
  EXPECT_TRUE(reader->ReadAll().value().empty());
}

// --- Differential vs legacy format ----------------------------------------

TEST_F(ColumnarTest, DifferentialAgainstLegacyRandomized) {
  for (uint64_t seed : {3u, 17u, 99u}) {
    const PatchCollection patches = RandomPatches(211, seed);
    auto legacy = MaterializedView::Open(Path("legacy_" + std::to_string(seed)),
                                         MaterializedView::Format::kLegacy)
                      .value();
    setenv("DEEPLENS_COLUMNAR_CHUNK_ROWS", "32", 1);
    auto col = MaterializedView::Open(Path("col_" + std::to_string(seed)),
                                      MaterializedView::Format::kColumnar)
                   .value();
    ASSERT_EQ(legacy->format(), MaterializedView::Format::kLegacy);
    ASSERT_EQ(col->format(), MaterializedView::Format::kColumnar);
    for (const Patch& p : patches) {
      ASSERT_TRUE(legacy->Append(p).ok());
      ASSERT_TRUE(col->Append(p).ok());
    }
    ASSERT_TRUE(legacy->Flush().ok());
    ASSERT_TRUE(col->Flush().ok());
    EXPECT_EQ(col->size(), legacy->size());
    ExpectSamePatches(col->LoadAll().value(), legacy->LoadAll().value());
  }
}

TEST_F(ColumnarTest, DifferentialEdgeCases) {
  // Empty view, single-chunk view, and NULL-heavy view must all agree
  // with the legacy format row for row.
  const struct {
    const char* name;
    PatchCollection patches;
  } kCases[] = {
      {"empty", {}},
      {"one_chunk", RandomPatches(20, 5)},  // < default chunk_rows
      {"null_heavy", RandomPatches(150, 6, /*null_heavy=*/true)},
  };
  for (const auto& c : kCases) {
    auto legacy =
        MaterializedView::Open(Path(std::string("l_") + c.name),
                               MaterializedView::Format::kLegacy)
            .value();
    auto col = MaterializedView::Open(Path(std::string("c_") + c.name),
                                      MaterializedView::Format::kColumnar)
                   .value();
    for (const Patch& p : c.patches) {
      ASSERT_TRUE(legacy->Append(p).ok());
      ASSERT_TRUE(col->Append(p).ok());
    }
    ASSERT_TRUE(legacy->Flush().ok());
    ASSERT_TRUE(col->Flush().ok());
    ExpectSamePatches(col->LoadAll().value(), legacy->LoadAll().value());
  }
}

TEST_F(ColumnarTest, OutOfOrderAndOverwritingAppendsMatchLegacy) {
  setenv("DEEPLENS_COLUMNAR_CHUNK_ROWS", "16", 1);
  auto legacy = MaterializedView::Open(Path("legacy"),
                                       MaterializedView::Format::kLegacy)
                    .value();
  auto col = MaterializedView::Open(Path("col"),
                                    MaterializedView::Format::kColumnar)
                 .value();
  Rng rng(123);
  // Shuffled ids, then overwrite a third of them with fresh content.
  std::vector<PatchId> ids;
  for (PatchId id = 1; id <= 90; ++id) ids.push_back(id);
  for (size_t i = ids.size(); i > 1; --i) {
    std::swap(ids[i - 1], ids[rng.NextU64Below(i)]);
  }
  for (PatchId id : ids) {
    const Patch p = RandomPatch(id, &rng);
    ASSERT_TRUE(legacy->Append(p).ok());
    ASSERT_TRUE(col->Append(p).ok());
  }
  for (PatchId id = 2; id <= 90; id += 3) {
    const Patch p = RandomPatch(id, &rng);
    ASSERT_TRUE(legacy->Append(p).ok());
    ASSERT_TRUE(col->Append(p).ok());
  }
  ASSERT_TRUE(legacy->Flush().ok());
  ASSERT_TRUE(col->Flush().ok());
  ExpectSamePatches(col->LoadAll().value(), legacy->LoadAll().value());
  // The merge-rewrite must leave a clean strictly-ascending file behind.
  auto reader = col->OpenReader().value();
  EXPECT_EQ(reader->total_rows(), 90u);
}

// --- Zone-map pruning vs unpruned scans ------------------------------------

// Patches whose "bucket" meta key is monotone in the id, so a range
// predicate on it prunes a contiguous chunk prefix/suffix via zone maps.
PatchCollection BucketedPatches(size_t n) {
  Rng rng(77);
  PatchCollection out;
  for (size_t i = 0; i < n; ++i) {
    Patch p = RandomPatch(static_cast<PatchId>(i + 1), &rng);
    p.mutable_meta().Set("bucket", static_cast<int64_t>(i / 10));
    p.mutable_meta().Set("label",
                         std::string(i % 3 == 0 ? "car" : "person"));
    out.push_back(std::move(p));
  }
  return out;
}

TEST_F(ColumnarTest, ZoneMapPrunedScanMatchesUnprunedScan) {
  setenv("DEEPLENS_COLUMNAR_CHUNK_ROWS", "20", 1);
  const PatchCollection patches = BucketedPatches(200);

  auto db = Database::Open(Path("db")).value();
  ASSERT_TRUE(db->RegisterView("v", patches).ok());
  ASSERT_TRUE(db->PersistView("v").ok());

  // Resident scan (full collection in RAM) is the oracle.
  ViewCache resident;
  resident.patches = patches;

  ASSERT_TRUE(db->AttachPersistedView("v").ok());
  ViewCache* attached = db->GetView("v").value();
  ASSERT_TRUE(attached->disk_backed());

  const struct {
    const char* name;
    ExprPtr predicate;
    bool expect_pruning;
  } kCases[] = {
      {"range", And(Ge(Attr("bucket"), Lit(int64_t{4})),
                    Lt(Attr("bucket"), Lit(int64_t{7}))),
       true},
      {"eq_plus_residual",
       And(Eq(Attr("bucket"), Lit(int64_t{2})),
           Eq(Attr("label"), Lit("car"))),
       true},
      {"unsargable_arith",
       Gt(Add(Attr("bucket"), Lit(int64_t{0})), Lit(int64_t{15})), false},
      {"no_predicate", nullptr, false},
      {"empty_result", Gt(Attr("bucket"), Lit(int64_t{1000})), true},
  };
  for (const auto& c : kCases) {
    SCOPED_TRACE(c.name);
    PlanExplanation oracle_plan;
    auto expected =
        Planner::ExecuteScan(resident, c.predicate, &oracle_plan).value();
    PlanExplanation plan;
    auto got = Planner::ExecuteScan(*attached, c.predicate, &plan).value();
    EXPECT_EQ(plan.path, AccessPath::kColumnarScan);
    EXPECT_TRUE(plan.columnar.used);
    EXPECT_EQ(plan.columnar.chunks_total, 10u);
    if (c.expect_pruning) {
      EXPECT_GT(plan.columnar.chunks_pruned, 0u);
    } else {
      EXPECT_EQ(plan.columnar.chunks_pruned, 0u);
    }
    EXPECT_EQ(plan.columnar.chunks_read,
              plan.columnar.chunks_total - plan.columnar.chunks_pruned);
    ExpectSamePatches(got, expected);
  }
}

TEST_F(ColumnarTest, AggregatesOnAttachedViewMatchResident) {
  setenv("DEEPLENS_COLUMNAR_CHUNK_ROWS", "20", 1);
  const PatchCollection patches = BucketedPatches(200);
  auto db = Database::Open(Path("db")).value();
  ASSERT_TRUE(db->RegisterView("v", patches).ok());
  ASSERT_TRUE(db->PersistView("v").ok());
  ASSERT_TRUE(db->AttachPersistedView("v").ok());
  ViewCache* attached = db->GetView("v").value();
  ViewCache resident;
  resident.patches = patches;

  const ExprPtr pred = Le(Attr("bucket"), Lit(int64_t{5}));
  EXPECT_EQ(Planner::ExecuteScanCount(*attached, pred, nullptr).value(),
            Planner::ExecuteScanCount(resident, pred, nullptr).value());
  EXPECT_EQ(
      Planner::ExecuteScanCountDistinct(*attached, "label", pred, nullptr)
          .value(),
      Planner::ExecuteScanCountDistinct(resident, "label", pred, nullptr)
          .value());
  EXPECT_EQ(
      Planner::ExecuteScanGroupCount(*attached, "label", pred, nullptr)
          .value(),
      Planner::ExecuteScanGroupCount(resident, "label", pred, nullptr)
          .value());
  auto got = Planner::ExecuteScanMinBy(*attached, "bucket", pred, nullptr)
                 .value();
  auto expected =
      Planner::ExecuteScanMinBy(resident, "bucket", pred, nullptr).value();
  ASSERT_EQ(got.has_value(), expected.has_value());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(SerializePatch(*got), SerializePatch(*expected));
}

// --- Corruption recovery ---------------------------------------------------

TEST_F(ColumnarTest, TornTailIsTypedCorruption) {
  {
    columnar::ColumnarWriterOptions options;
    options.chunk_rows = 16;
    auto writer =
        columnar::ColumnarWriter::Open(Path("v.col"), options).value();
    for (const Patch& p : RandomPatches(64, 9)) {
      ASSERT_TRUE(writer->Append(p).ok());
    }
    ASSERT_TRUE(writer->Commit().ok());
  }
  // A crash mid-commit leaves a truncated tail.
  const auto full = std::filesystem::file_size(Path("v.col"));
  std::filesystem::resize_file(Path("v.col"), full - 5);
  auto opened = columnar::ColumnarReader::Open(Path("v.col"));
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
}

TEST_F(ColumnarTest, FlippedChunkByteIsTypedCorruption) {
  {
    columnar::ColumnarWriterOptions options;
    options.chunk_rows = 16;
    auto writer =
        columnar::ColumnarWriter::Open(Path("v.col"), options).value();
    for (const Patch& p : RandomPatches(64, 10)) {
      ASSERT_TRUE(writer->Append(p).ok());
    }
    ASSERT_TRUE(writer->Commit().ok());
  }
  // Footer stays valid, so Open succeeds; the damaged chunk's CRC check
  // fires at read time.
  auto reader = columnar::ColumnarReader::Open(Path("v.col")).value();
  ASSERT_GT(reader->num_chunks(), 1u);
  const uint64_t offset = reader->chunk(1).offset + 3;
  {
    std::fstream f(Path("v.col"),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&byte, 1);
  }
  auto damaged = columnar::ColumnarReader::Open(Path("v.col")).value();
  auto read = damaged->ReadChunk(1, columnar::ChunkReadOptions{});
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
  // Undamaged chunks still read fine.
  EXPECT_TRUE(damaged->ReadChunk(0, columnar::ChunkReadOptions{}).ok());
}

TEST_F(ColumnarTest, GarbageFileIsTypedCorruption) {
  {
    std::ofstream f(Path("v.col"), std::ios::binary);
    f << "DLCOLV1\nnot really a footer at all";
  }
  auto opened = columnar::ColumnarReader::Open(Path("v.col"));
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruption);
}

// --- Async decode-ahead loader ---------------------------------------------

TEST_F(ColumnarTest, ConcurrentPrefetchScansAreDeterministic) {
  setenv("DEEPLENS_COLUMNAR_CHUNK_ROWS", "16", 1);
  const PatchCollection patches = RandomPatches(160, 21);
  auto view = MaterializedView::Open(Path("v"),
                                     MaterializedView::Format::kColumnar)
                  .value();
  for (const Patch& p : patches) ASSERT_TRUE(view->Append(p).ok());
  ASSERT_TRUE(view->Flush().ok());
  auto reader = view->OpenReader().value();

  // Many threads, each with its own decode-ahead loader over the shared
  // reader; every scan must produce the identical byte sequence.
  constexpr int kThreads = 4;
  std::vector<PatchCollection> results(kThreads);
  std::vector<Status> statuses(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<size_t> chunks(reader->num_chunks());
      for (size_t i = 0; i < chunks.size(); ++i) chunks[i] = i;
      columnar::PrefetchOptions prefetch;
      prefetch.depth = 1 + static_cast<size_t>(t);  // vary the knob
      columnar::AsyncChunkLoader loader(reader, chunks,
                                        columnar::ChunkReadOptions{},
                                        prefetch);
      while (true) {
        auto rows = loader.Next();
        if (!rows.ok()) {
          statuses[t] = rows.status();
          return;
        }
        if (!rows.value().has_value()) break;
        for (Patch& p : *rows.value()) {
          results[t].push_back(std::move(p));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(statuses[t].ok()) << statuses[t].ToString();
    ExpectSamePatches(results[t], patches);
  }
}

TEST_F(ColumnarTest, ByteBudgetBoundsTheQueue) {
  const PatchCollection patches = RandomPatches(240, 31);
  columnar::ColumnarWriterOptions options;
  options.chunk_rows = 16;
  auto writer =
      columnar::ColumnarWriter::Open(Path("v.col"), options).value();
  for (const Patch& p : patches) ASSERT_TRUE(writer->Append(p).ok());
  ASSERT_TRUE(writer->Commit().ok());
  auto reader = columnar::ColumnarReader::Open(Path("v.col")).value();

  std::vector<size_t> chunks(reader->num_chunks());
  size_t max_chunk_bytes = 0;
  for (size_t i = 0; i < chunks.size(); ++i) {
    chunks[i] = i;
    size_t bytes = 0;
    const PatchCollection chunk_rows =
        reader->ReadChunk(i, columnar::ChunkReadOptions{}).value();
    for (const Patch& p : chunk_rows) {
      bytes += columnar::ApproxPatchBytes(p);
    }
    max_chunk_bytes = std::max(max_chunk_bytes, bytes);
  }
  columnar::PrefetchOptions prefetch;
  prefetch.depth = 8;
  prefetch.byte_budget = 1;  // every queued chunk overshoots
  columnar::AsyncChunkLoader loader(reader, chunks,
                                    columnar::ChunkReadOptions{}, prefetch);
  // Don't consume yet: with nothing draining, the worker enqueues chunk 0
  // (empty-queue exemption), then must hit the budget wait on chunk 1.
  // Polling instead of asserting after the drain keeps this deterministic
  // — a fast consumer can otherwise empty the queue before the worker
  // ever observes it over budget.
  while (loader.stats().budget_waits == 0) {
    std::this_thread::yield();
  }
  PatchCollection all;
  while (true) {
    auto rows = loader.Next().value();
    if (!rows.has_value()) break;
    for (Patch& p : *rows) all.push_back(std::move(p));
  }
  ExpectSamePatches(all, patches);
  const columnar::PrefetchStats stats = loader.stats();
  EXPECT_EQ(stats.chunks_loaded, reader->num_chunks());
  EXPECT_EQ(stats.rows_loaded, patches.size());
  EXPECT_GT(stats.budget_waits, 0u);
  // The empty-queue exemption admits one oversized chunk at a time, so
  // the high-water mark is a single chunk, never depth * chunk.
  EXPECT_LE(stats.peak_queued_bytes, max_chunk_bytes);
}

TEST_F(ColumnarTest, DepthZeroIsSynchronous) {
  const PatchCollection patches = RandomPatches(60, 41);
  columnar::ColumnarWriterOptions options;
  options.chunk_rows = 16;
  auto writer =
      columnar::ColumnarWriter::Open(Path("v.col"), options).value();
  for (const Patch& p : patches) ASSERT_TRUE(writer->Append(p).ok());
  ASSERT_TRUE(writer->Commit().ok());
  auto reader = columnar::ColumnarReader::Open(Path("v.col")).value();
  std::vector<size_t> chunks(reader->num_chunks());
  for (size_t i = 0; i < chunks.size(); ++i) chunks[i] = i;
  columnar::PrefetchOptions prefetch;
  prefetch.depth = 0;
  columnar::AsyncChunkLoader loader(reader, chunks,
                                    columnar::ChunkReadOptions{}, prefetch);
  PatchCollection all;
  while (true) {
    auto rows = loader.Next().value();
    if (!rows.has_value()) break;
    for (Patch& p : *rows) all.push_back(std::move(p));
  }
  ExpectSamePatches(all, patches);
  EXPECT_EQ(loader.stats().depth, 0u);
  EXPECT_EQ(loader.stats().consumer_waits, 0u);
}

TEST_F(ColumnarTest, ProjectionSkipsUnrequestedColumns) {
  const PatchCollection patches = BucketedPatches(50);
  auto writer = columnar::ColumnarWriter::Open(Path("v.col")).value();
  for (const Patch& p : patches) ASSERT_TRUE(writer->Append(p).ok());
  ASSERT_TRUE(writer->Commit().ok());
  auto reader = columnar::ColumnarReader::Open(Path("v.col")).value();

  columnar::ChunkReadOptions options;
  options.projection.pixels = false;
  options.projection.features = false;
  options.projection.all_meta = false;
  options.projection.meta_keys = {"bucket"};
  auto rows = reader->ReadChunk(0, options).value();
  ASSERT_EQ(rows.size(), patches.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].id(), patches[i].id());
    EXPECT_FALSE(rows[i].has_pixels());
    EXPECT_FALSE(rows[i].has_features());
    EXPECT_EQ(rows[i].meta().Get("bucket").Compare(
                  patches[i].meta().Get("bucket")),
              0);
    EXPECT_TRUE(rows[i].meta().Get("label").is_null());  // not projected
  }
}

TEST_F(ColumnarTest, ChunkRowsKnobShapesTheFile) {
  setenv("DEEPLENS_COLUMNAR_CHUNK_ROWS", "25", 1);
  auto writer = columnar::ColumnarWriter::Open(Path("v.col")).value();
  for (const Patch& p : RandomPatches(100, 51)) {
    ASSERT_TRUE(writer->Append(p).ok());
  }
  ASSERT_TRUE(writer->Commit().ok());
  auto reader = columnar::ColumnarReader::Open(Path("v.col")).value();
  EXPECT_EQ(reader->num_chunks(), 4u);
  for (size_t c = 0; c < reader->num_chunks(); ++c) {
    EXPECT_EQ(reader->chunk(c).rows, 25u);
  }
}

}  // namespace
}  // namespace deeplens
