// Unit tests for lineage/: chains, backtracing, the frame-keyed secondary
// index, and forward (children) queries.
#include <gtest/gtest.h>

#include "lineage/lineage.h"

namespace deeplens {
namespace {

TEST(LineageTest, RecordAndGet) {
  LineageStore store;
  store.Record(1, ImgRef{"traffic", 7, kInvalidPatchId});
  auto ref = store.GetRef(1);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->dataset, "traffic");
  EXPECT_EQ(ref->frameno, 7);
  EXPECT_TRUE(store.GetRef(99).status().IsNotFound());
  EXPECT_EQ(store.size(), 1u);
}

TEST(LineageTest, BacktraceFollowsChainToRoot) {
  LineageStore store;
  store.Record(1, ImgRef{"traffic", 7, kInvalidPatchId});  // root patch
  store.Record(2, ImgRef{"", -1, 1});                      // derived
  store.Record(3, ImgRef{"", -1, 2});                      // derived twice
  auto root = store.Backtrace(3);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->dataset, "traffic");
  EXPECT_EQ(root->frameno, 7);
}

TEST(LineageTest, ChainListsEveryHop) {
  LineageStore store;
  store.Record(1, ImgRef{"pc", 3, kInvalidPatchId});
  store.Record(2, ImgRef{"", -1, 1});
  store.Record(3, ImgRef{"", -1, 2});
  auto chain = store.Chain(3);
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->size(), 3u);
  EXPECT_EQ(chain->back().dataset, "pc");
}

TEST(LineageTest, TruncatedChainReturnsBestKnown) {
  LineageStore store;
  store.Record(5, ImgRef{"football", 12, 999});  // parent never recorded
  auto root = store.Backtrace(5);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->dataset, "football");
  EXPECT_EQ(root->frameno, 12);
}

TEST(LineageTest, FrameIndexFindsDerivedPatches) {
  LineageStore store;
  // Two root patches on frame 4, one on frame 5, plus a derived patch
  // whose root is frame 4.
  store.Record(1, ImgRef{"traffic", 4, kInvalidPatchId});
  store.Record(2, ImgRef{"traffic", 4, kInvalidPatchId});
  store.Record(3, ImgRef{"traffic", 5, kInvalidPatchId});
  store.Record(4, ImgRef{"traffic", 4, 1});
  std::vector<PatchId> out;
  store.PatchesForFrame("traffic", 4, &out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<PatchId>{1, 2, 4}));
}

TEST(LineageTest, FrameRangeQuery) {
  LineageStore store;
  for (int f = 0; f < 20; ++f) {
    store.Record(static_cast<PatchId>(f + 1),
                 ImgRef{"v", f, kInvalidPatchId});
  }
  std::vector<PatchId> out;
  store.PatchesForFrameRange("v", 5, 9, &out);
  EXPECT_EQ(out.size(), 5u);
}

TEST(LineageTest, DatasetsAreIsolated) {
  LineageStore store;
  store.Record(1, ImgRef{"a", 1, kInvalidPatchId});
  store.Record(2, ImgRef{"b", 1, kInvalidPatchId});
  std::vector<PatchId> out;
  store.PatchesForFrame("a", 1, &out);
  EXPECT_EQ(out, (std::vector<PatchId>{1}));
}

TEST(LineageTest, ChildrenQuery) {
  LineageStore store;
  store.Record(1, ImgRef{"x", 0, kInvalidPatchId});
  store.Record(2, ImgRef{"", -1, 1});
  store.Record(3, ImgRef{"", -1, 1});
  std::vector<PatchId> kids;
  store.Children(1, &kids);
  std::sort(kids.begin(), kids.end());
  EXPECT_EQ(kids, (std::vector<PatchId>{2, 3}));
  kids.clear();
  store.Children(2, &kids);
  EXPECT_TRUE(kids.empty());
}

TEST(LineageTest, InvalidIdIgnored) {
  LineageStore store;
  store.Record(kInvalidPatchId, ImgRef{"x", 0, kInvalidPatchId});
  EXPECT_EQ(store.size(), 0u);
}

TEST(LineageTest, DerivedPatchInheritsRootFrameInIndex) {
  LineageStore store;
  store.Record(10, ImgRef{"ds", 3, kInvalidPatchId});
  // Derived patch carries no provenance of its own, only a parent.
  store.Record(11, ImgRef{"", -1, 10});
  std::vector<PatchId> out;
  store.PatchesForFrame("ds", 3, &out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<PatchId>{10, 11}));
}

}  // namespace
}  // namespace deeplens
