// Unit tests for nn/: devices (including the simulated GPU's overhead
// accounting), layers (hand-computed convolutions, im2col), networks, and
// the three model instantiations against synthetic scenes.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "nn/device.h"
#include "nn/layers.h"
#include "nn/models.h"
#include "nn/network.h"
#include "sim/scene.h"

namespace deeplens {
namespace nn {
namespace {

class DeviceEquivalence : public ::testing::TestWithParam<DeviceKind> {};

TEST_P(DeviceEquivalence, MatmulMatchesScalarReference) {
  Device* device = GetDevice(GetParam());
  Device* reference = GetDevice(DeviceKind::kCpuScalar);
  const size_t m = 7, k = 11, n = 5;
  Rng rng(3);
  std::vector<float> a(m * k), b(k * n);
  for (auto& x : a) x = static_cast<float>(rng.NextGaussian());
  for (auto& x : b) x = static_cast<float>(rng.NextGaussian());
  std::vector<float> c_dev(m * n), c_ref(m * n);
  device->Matmul(a.data(), b.data(), c_dev.data(), m, k, n);
  reference->Matmul(a.data(), b.data(), c_ref.data(), m, k, n);
  for (size_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(c_dev[i], c_ref[i], 1e-3f);
  }
}

TEST_P(DeviceEquivalence, PairwiseL2MatchesScalarReference) {
  Device* device = GetDevice(GetParam());
  Device* reference = GetDevice(DeviceKind::kCpuScalar);
  const size_t na = 9, nb = 6, dim = 17;
  Rng rng(4);
  std::vector<float> a(na * dim), b(nb * dim);
  for (auto& x : a) x = static_cast<float>(rng.NextGaussian());
  for (auto& x : b) x = static_cast<float>(rng.NextGaussian());
  std::vector<float> d_dev(na * nb), d_ref(na * nb);
  device->PairwiseL2Squared(a.data(), na, b.data(), nb, dim, d_dev.data());
  reference->PairwiseL2Squared(a.data(), na, b.data(), nb, dim,
                               d_ref.data());
  for (size_t i = 0; i < na * nb; ++i) {
    EXPECT_NEAR(d_dev[i], d_ref[i], 1e-3f);
  }
}

TEST_P(DeviceEquivalence, ParallelMapCoversAllIndices) {
  Device* device = GetDevice(GetParam());
  std::vector<std::atomic<int>> hits(128);
  device->ParallelMap(
      128, [&](size_t i) { hits[i]++; }, 1024);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(AllDevices, DeviceEquivalence,
                         ::testing::Values(DeviceKind::kCpuScalar,
                                           DeviceKind::kCpuVector,
                                           DeviceKind::kGpuSim));

TEST(GpuSimTest, ChargesOverhead) {
  ConfigureGpuSim(GpuSimOptions{});
  Device* gpu = GetDevice(DeviceKind::kGpuSim);
  const uint64_t before = gpu->simulated_overhead_nanos();
  std::vector<float> x(64, -1.0f);
  gpu->Relu(x.data(), x.size());
  EXPECT_GT(gpu->simulated_overhead_nanos(), before);
  for (float v : x) EXPECT_EQ(v, 0.0f);
}

TEST(GpuSimTest, CpuDevicesHaveNoOverhead) {
  EXPECT_EQ(GetDevice(DeviceKind::kCpuScalar)->simulated_overhead_nanos(),
            0u);
  EXPECT_EQ(GetDevice(DeviceKind::kCpuVector)->simulated_overhead_nanos(),
            0u);
}

TEST(DeviceTest, Names) {
  EXPECT_STREQ(GetDevice(DeviceKind::kCpuScalar)->name(), "cpu");
  EXPECT_STREQ(GetDevice(DeviceKind::kCpuVector)->name(), "avx");
  EXPECT_STREQ(GetDevice(DeviceKind::kGpuSim)->name(), "gpu");
}

TEST(Im2ColTest, UnrollsReceptiveFields) {
  // 1×3×3 input, 2×2 kernel, stride 1, no padding → 4 columns of 4 taps.
  Tensor input({1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor cols = Im2Col(input, 2, 1, 0);
  ASSERT_EQ(cols.dim(0), 4);
  ASSERT_EQ(cols.dim(1), 4);
  // First output position sees taps {1,2,4,5} (one per kernel slot row).
  EXPECT_FLOAT_EQ(cols.At(0, 0), 1);
  EXPECT_FLOAT_EQ(cols.At(1, 0), 2);
  EXPECT_FLOAT_EQ(cols.At(2, 0), 4);
  EXPECT_FLOAT_EQ(cols.At(3, 0), 5);
  // Last position sees {5,6,8,9}.
  EXPECT_FLOAT_EQ(cols.At(0, 3), 5);
  EXPECT_FLOAT_EQ(cols.At(3, 3), 9);
}

TEST(Im2ColTest, PaddingContributesZeros) {
  Tensor input({1, 1, 1}, {7});
  Tensor cols = Im2Col(input, 3, 1, 1);
  ASSERT_EQ(cols.dim(0), 9);
  ASSERT_EQ(cols.dim(1), 1);
  float sum = 0;
  for (int i = 0; i < 9; ++i) sum += cols.At(i, 0);
  EXPECT_FLOAT_EQ(sum, 7.0f);  // only the center tap is non-zero
}

TEST(Conv2dTest, IdentityKernelPassesThrough) {
  Conv2d conv(1, 1, 3, 1, 1);
  conv.weights().At(0, 4) = 1.0f;  // center tap
  Tensor input({1, 4, 4});
  for (int i = 0; i < 16; ++i) input[i] = static_cast<float>(i);
  auto out = conv.Forward(input, GetDevice(DeviceKind::kCpuVector));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->AllClose(input, 1e-4f));
}

TEST(Conv2dTest, HandComputedConvolution) {
  // 2×2 all-ones kernel over a 2×2 input without padding = sum + bias.
  Conv2d conv(1, 1, 2, 1, 0);
  for (int i = 0; i < 4; ++i) conv.weights().At(0, i) = 1.0f;
  conv.bias()[0] = 0.5f;
  Tensor input({1, 2, 2}, {1, 2, 3, 4});
  auto out = conv.Forward(input, GetDevice(DeviceKind::kCpuVector));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1);
  EXPECT_FLOAT_EQ((*out)[0], 10.5f);
}

TEST(Conv2dTest, StrideDownsamples) {
  Conv2d conv(1, 1, 2, 2, 0);
  for (int i = 0; i < 4; ++i) conv.weights().At(0, i) = 0.25f;
  Tensor input({1, 4, 4});
  auto out = conv.Forward(input, GetDevice(DeviceKind::kCpuVector));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->dim(1), 2);
  EXPECT_EQ(out->dim(2), 2);
}

TEST(Conv2dTest, RejectsBadInput) {
  Conv2d conv(3, 4, 3, 1, 1);
  EXPECT_FALSE(
      conv.Forward(Tensor({2, 8, 8}), GetDevice(DeviceKind::kCpuVector))
          .ok());
  EXPECT_FALSE(
      conv.Forward(Tensor({8}), GetDevice(DeviceKind::kCpuVector)).ok());
}

TEST(PoolTest, MaxPoolTakesMaxima) {
  MaxPool2d pool(2);
  Tensor input({1, 2, 4}, {1, 5, 2, 0, 3, 4, 8, 1});
  auto out = pool.Forward(input, GetDevice(DeviceKind::kCpuVector));
  ASSERT_TRUE(out.ok());
  EXPECT_FLOAT_EQ(out->At(0, 0, 0), 5);
  EXPECT_FLOAT_EQ(out->At(0, 0, 1), 8);
}

TEST(PoolTest, AvgPoolAverages) {
  AvgPool2d pool(2);
  Tensor input({1, 2, 2}, {1, 2, 3, 4});
  auto out = pool.Forward(input, GetDevice(DeviceKind::kCpuVector));
  ASSERT_TRUE(out.ok());
  EXPECT_FLOAT_EQ((*out)[0], 2.5f);
}

TEST(LinearTest, ComputesAffine) {
  Linear fc(2, 2);
  fc.weights().At(0, 0) = 1;
  fc.weights().At(0, 1) = 2;
  fc.weights().At(1, 0) = -1;
  fc.weights().At(1, 1) = 0;
  fc.bias()[0] = 0.5f;
  Tensor input = Tensor::FromVector({3, 4});
  auto out = fc.Forward(input, GetDevice(DeviceKind::kCpuVector));
  ASSERT_TRUE(out.ok());
  EXPECT_FLOAT_EQ((*out)[0], 11.5f);
  EXPECT_FLOAT_EQ((*out)[1], -3.0f);
}

TEST(NetworkTest, SequentialForwardAndSummary) {
  Network net("test");
  net.Add<Linear>(4, 8);
  net.Add<ReluLayer>();
  net.Add<Linear>(8, 2);
  net.Add<SoftmaxLayer>();
  EXPECT_EQ(net.num_layers(), 4u);
  EXPECT_EQ(net.num_params(), 4 * 8 + 8 + 8 * 2 + 2);
  auto out = net.Forward(Tensor({4}), GetDevice(DeviceKind::kCpuVector));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2);
  EXPECT_NE(net.Summary().find("linear"), std::string::npos);
}

class BatchDevices : public ::testing::TestWithParam<DeviceKind> {};

TEST_P(BatchDevices, ForwardBatchMatchesSingle) {
  Network net("batch");
  auto* fc = net.Add<Linear>(3, 2);
  Rng rng(8);
  fc->InitRandom(&rng, 0.5f);
  std::vector<Tensor> inputs;
  for (int i = 0; i < 5; ++i) {
    inputs.push_back(Tensor::FromVector(
        {static_cast<float>(i), 1.0f, -static_cast<float>(i)}));
  }
  Device* device = GetDevice(GetParam());
  auto batch = ForwardBatch(net, inputs, device);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    auto single = net.Forward(inputs[i], GetDevice(DeviceKind::kCpuVector));
    ASSERT_TRUE(single.ok());
    EXPECT_TRUE((*batch)[i].AllClose(*single, 1e-4f));
  }
}

INSTANTIATE_TEST_SUITE_P(AllDevices, BatchDevices,
                         ::testing::Values(DeviceKind::kCpuScalar,
                                           DeviceKind::kCpuVector,
                                           DeviceKind::kGpuSim));

// --- Models over synthetic scenes ------------------------------------------

sim::SceneObject MakeObject(ObjectClass cls, int x0, int y0, int w, int h,
                            int id = 1) {
  sim::SceneObject obj;
  obj.cls = cls;
  obj.bbox = BBox{x0, y0, x0 + w, y0 + h};
  obj.object_id = id;
  obj.depth = 20.0f;
  return obj;
}

TEST(TinySsdTest, DetectsEachClass) {
  Device* device = GetDevice(DeviceKind::kCpuVector);
  TinySsdDetector detector;
  struct Case {
    ObjectClass cls;
    sim::Background bg;
  };
  for (const auto& c : {Case{ObjectClass::kCar, sim::Background::kAsphalt},
                        Case{ObjectClass::kPerson, sim::Background::kAsphalt},
                        Case{ObjectClass::kPlayer, sim::Background::kField}}) {
    std::vector<sim::SceneObject> objects = {
        MakeObject(c.cls, 40, 30, 20, 14)};
    Image frame = sim::RenderScene(128, 72, c.bg, objects, 7);
    auto dets = detector.Detect(frame, device);
    ASSERT_TRUE(dets.ok());
    bool found = false;
    for (const auto& d : *dets) {
      if (d.label == c.cls && d.bbox.Iou(objects[0].bbox) >= 0.3f) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << "class " << ObjectClassName(c.cls);
  }
}

TEST(TinySsdTest, EmptySceneYieldsNoDetections) {
  Device* device = GetDevice(DeviceKind::kCpuVector);
  TinySsdDetector detector;
  Image frame = sim::RenderScene(128, 72, sim::Background::kAsphalt, {}, 9);
  auto dets = detector.Detect(frame, device);
  ASSERT_TRUE(dets.ok());
  EXPECT_TRUE(dets->empty());
}

TEST(TinySsdTest, RefinedBoxesAreTight) {
  Device* device = GetDevice(DeviceKind::kCpuVector);
  TinySsdDetector detector;
  std::vector<sim::SceneObject> objects = {
      MakeObject(ObjectClass::kCar, 50, 40, 16, 7)};
  Image frame =
      sim::RenderScene(128, 72, sim::Background::kAsphalt, objects, 11);
  auto dets = detector.Detect(frame, device);
  ASSERT_TRUE(dets.ok());
  ASSERT_FALSE(dets->empty());
  // Refinement should recover the object box closely (IoU >= 0.7, far
  // better than raw grid-cell quantization).
  float best = 0;
  for (const auto& d : *dets) {
    best = std::max(best, d.bbox.Iou(objects[0].bbox));
  }
  EXPECT_GE(best, 0.7f);
}

TEST(TinySsdTest, RejectsNonRgb) {
  TinySsdDetector detector;
  EXPECT_FALSE(
      detector.Detect(Image(8, 8, 1), GetDevice(DeviceKind::kCpuVector))
          .ok());
  EXPECT_FALSE(
      detector.Detect(Image(), GetDevice(DeviceKind::kCpuVector)).ok());
}

TEST(TinySsdTest, BatchMatchesSingleFrame) {
  Device* device = GetDevice(DeviceKind::kCpuVector);
  TinySsdDetector detector;
  std::vector<Image> frames;
  for (int i = 0; i < 4; ++i) {
    std::vector<sim::SceneObject> objects = {
        MakeObject(ObjectClass::kCar, 20 + 10 * i, 40, 16, 7)};
    frames.push_back(
        sim::RenderScene(128, 72, sim::Background::kAsphalt, objects,
                         100 + static_cast<uint64_t>(i)));
  }
  auto batch = detector.DetectBatch(frames, device);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < frames.size(); ++i) {
    auto single = detector.Detect(frames[i], device);
    ASSERT_TRUE(single.ok());
    ASSERT_EQ((*batch)[i].size(), single->size());
    for (size_t j = 0; j < single->size(); ++j) {
      EXPECT_EQ((*batch)[i][j].bbox.x0, (*single)[j].bbox.x0);
      EXPECT_EQ((*batch)[i][j].label, (*single)[j].label);
    }
  }
}

class OcrDigits : public ::testing::TestWithParam<int> {};

TEST_P(OcrDigits, RecognizesRenderedDigit) {
  const int digit = GetParam();
  TinyOcr ocr;
  // Render the digit at a generous scale on a dark panel.
  Image panel(30, 30, 3);
  for (auto& b : panel.bytes()) b = 25;
  sim::DrawDigits(&panel, BBox{0, 0, 30, 30}, std::to_string(digit));
  auto got = ocr.RecognizeText(panel, GetDevice(DeviceKind::kCpuVector));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, std::to_string(digit));
}

INSTANTIATE_TEST_SUITE_P(AllDigits, OcrDigits, ::testing::Range(0, 10));

TEST(TinyOcrTest, RecognizesMultiDigitString) {
  TinyOcr ocr;
  Image panel(90, 24, 3);
  for (auto& b : panel.bytes()) b = 25;
  sim::DrawDigits(&panel, BBox{2, 2, 88, 22}, "90817");
  auto got = ocr.RecognizeText(panel, GetDevice(DeviceKind::kCpuVector));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "90817");
}

TEST(TinyOcrTest, EmptyPanelYieldsEmptyString) {
  TinyOcr ocr;
  Image panel(20, 20, 3);
  for (auto& b : panel.bytes()) b = 25;
  auto got = ocr.RecognizeText(panel, GetDevice(DeviceKind::kCpuVector));
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

TEST(TinyOcrTest, InklessGlyphRejected) {
  TinyOcr ocr;
  // No ink at all -> uniform posterior -> below the confidence floor.
  Image glyph(10, 14, 3);
  for (auto& b : glyph.bytes()) b = 60;
  auto digit =
      ocr.RecognizeDigit(glyph, GetDevice(DeviceKind::kCpuVector));
  EXPECT_TRUE(digit.status().IsNotFound());
}

TEST(TinyDepthTest, RecoversDepthFromApparentHeight) {
  TinyDepth model(kFocalTimesHeight);
  Device* device = GetDevice(DeviceKind::kCpuVector);
  for (float depth : {13.0f, 18.0f, 25.0f}) {
    const int h = static_cast<int>(kFocalTimesHeight / depth);
    sim::SceneObject ped =
        MakeObject(ObjectClass::kPerson, 50, 4, std::max(3, h / 3), h);
    ped.depth = depth;
    Image frame = sim::RenderScene(128, 72, sim::Background::kAsphalt,
                                   {ped}, 13);
    Image crop =
        frame.Crop(ped.bbox.x0, ped.bbox.y0, ped.bbox.x1, ped.bbox.y1);
    auto predicted = model.PredictDepth(crop, ped.bbox, 72, device);
    ASSERT_TRUE(predicted.ok());
    EXPECT_NEAR(*predicted, depth, depth * 0.15f) << "depth " << depth;
  }
}

TEST(TinyDepthTest, RejectsDegenerateInput) {
  TinyDepth model(kFocalTimesHeight);
  EXPECT_FALSE(model
                   .PredictDepth(Image(), BBox{0, 0, 4, 4}, 72,
                                 GetDevice(DeviceKind::kCpuVector))
                   .ok());
  EXPECT_FALSE(model
                   .PredictDepth(Image(4, 4, 3), BBox{0, 0, 4, 0}, 72,
                                 GetDevice(DeviceKind::kCpuVector))
                   .ok());
}

TEST(DomainTest, BBoxIou) {
  BBox a{0, 0, 10, 10};
  BBox b{5, 0, 15, 10};
  EXPECT_NEAR(a.Iou(b), 50.0f / 150.0f, 1e-5f);
  EXPECT_EQ(a.Iou(BBox{20, 20, 30, 30}), 0.0f);
  EXPECT_NEAR(a.Iou(a), 1.0f, 1e-6f);
}

TEST(DomainTest, GlyphFontShapes) {
  for (int d = 0; d < 10; ++d) {
    int ink = 0;
    for (int y = 0; y < kGlyphHeight; ++y) {
      for (int x = 0; x < kGlyphWidth; ++x) {
        if (GlyphPixel(d, x, y)) ++ink;
      }
    }
    EXPECT_GT(ink, 5) << "digit " << d;
  }
  EXPECT_FALSE(GlyphPixel(3, -1, 0));
  EXPECT_FALSE(GlyphPixel(11, 0, 0));
}

}  // namespace
}  // namespace nn
}  // namespace deeplens
