// Unit tests for tensor/: Tensor semantics, Image operations, and the
// scalar-vs-vectorized kernel equivalence properties the AVX path relies
// on.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace deeplens {
namespace {

TEST(TensorTest, ZerosAndShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.size(), 24);
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.dim(1), 3);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
  EXPECT_EQ(t.ShapeString(), "[2, 3, 4]");
}

TEST(TensorTest, AtIndexing) {
  Tensor t({2, 3});
  t.At(1, 2) = 5.0f;
  EXPECT_EQ(t[5], 5.0f);
  Tensor u({2, 2, 2});
  u.At(1, 0, 1) = 3.0f;
  EXPECT_EQ(u[5], 3.0f);
}

TEST(TensorTest, ReshapeSharesBuffer) {
  Tensor t = Tensor::FromVector({1, 2, 3, 4, 5, 6});
  auto r = t.Reshape({2, 3});
  ASSERT_TRUE(r.ok());
  r->At(0, 2) = 99.0f;
  EXPECT_EQ(t[2], 99.0f);  // same storage
  EXPECT_TRUE(t.Reshape({7}).status().IsInvalidArgument());
}

TEST(TensorTest, CloneIsDeep) {
  Tensor t = Tensor::Full({4}, 2.0f);
  Tensor c = t.Clone();
  c[0] = -1.0f;
  EXPECT_EQ(t[0], 2.0f);
}

TEST(TensorTest, AllClose) {
  Tensor a = Tensor::FromVector({1.0f, 2.0f});
  Tensor b = Tensor::FromVector({1.0f, 2.00001f});
  EXPECT_TRUE(a.AllClose(b, 1e-3f));
  EXPECT_FALSE(a.AllClose(b, 1e-7f));
  EXPECT_FALSE(a.AllClose(Tensor::FromVector({1.0f})));
}

TEST(ImageTest, CropInBounds) {
  Image img(10, 8, 3);
  img.At(4, 3, 1) = 200;
  Image crop = img.Crop(3, 2, 7, 6);
  EXPECT_EQ(crop.width(), 4);
  EXPECT_EQ(crop.height(), 4);
  EXPECT_EQ(crop.At(1, 1, 1), 200);
}

TEST(ImageTest, CropClampsOutOfBounds) {
  Image img(10, 8, 3);
  Image crop = img.Crop(-5, -5, 100, 100);
  EXPECT_EQ(crop.width(), 10);
  EXPECT_EQ(crop.height(), 8);
  Image empty = img.Crop(5, 5, 5, 5);
  EXPECT_EQ(empty.width(), 0);
}

TEST(ImageTest, ResizePreservesSolidColor) {
  Image img(8, 8, 3);
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x)
      for (int c = 0; c < 3; ++c) img.At(x, y, c) = 77;
  Image big = img.Resize(16, 12);
  EXPECT_EQ(big.width(), 16);
  EXPECT_EQ(big.height(), 12);
  EXPECT_EQ(big.At(15, 11, 2), 77);
}

TEST(ImageTest, TensorRoundTrip) {
  Image img(4, 3, 3);
  Rng rng(5);
  for (auto& b : img.bytes()) b = static_cast<uint8_t>(rng.NextU64Below(256));
  Tensor t = img.ToTensorCHW();
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.dim(2), 4);
  Image back = Image::FromTensorCHW(t);
  EXPECT_EQ(Image::MeanAbsDiff(img, back), 0.0);
}

TEST(ImageTest, MeanAbsDiffMismatchedShapes) {
  EXPECT_EQ(Image::MeanAbsDiff(Image(2, 2, 3), Image(3, 3, 3)), 255.0);
}

// --- Kernel equivalence: vector kernels must agree with scalar ones ----

class KernelEquivalence : public ::testing::TestWithParam<size_t> {
 protected:
  std::vector<float> RandomVec(size_t n, uint64_t seed) {
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto& x : v) x = static_cast<float>(rng.NextGaussian());
    return v;
  }
};

TEST_P(KernelEquivalence, Add) {
  const size_t n = GetParam();
  auto a = RandomVec(n, 1), b = RandomVec(n, 2);
  std::vector<float> s(n), v(n);
  ops::AddScalarKernel(a.data(), b.data(), s.data(), n);
  ops::AddVectorKernel(a.data(), b.data(), v.data(), n);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(s[i], v[i]);
}

TEST_P(KernelEquivalence, Mul) {
  const size_t n = GetParam();
  auto a = RandomVec(n, 3), b = RandomVec(n, 4);
  std::vector<float> s(n), v(n);
  ops::MulScalarKernel(a.data(), b.data(), s.data(), n);
  ops::MulVectorKernel(a.data(), b.data(), v.data(), n);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(s[i], v[i]);
}

TEST_P(KernelEquivalence, Relu) {
  const size_t n = GetParam();
  auto a = RandomVec(n, 5);
  auto b = a;
  ops::ReluScalarKernel(a.data(), n);
  ops::ReluVectorKernel(b.data(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(a[i], b[i]);
    EXPECT_GE(a[i], 0.0f);
  }
}

TEST_P(KernelEquivalence, ScaleBias) {
  const size_t n = GetParam();
  auto a = RandomVec(n, 6);
  std::vector<float> s(n), v(n);
  ops::ScaleBiasScalarKernel(a.data(), 2.5f, -1.0f, s.data(), n);
  ops::ScaleBiasVectorKernel(a.data(), 2.5f, -1.0f, v.data(), n);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(s[i], v[i]);
}

TEST_P(KernelEquivalence, SumAndDot) {
  const size_t n = GetParam();
  auto a = RandomVec(n, 7), b = RandomVec(n, 8);
  EXPECT_NEAR(ops::SumScalar(a.data(), n), ops::SumVector(a.data(), n),
              1e-3 * std::max<size_t>(n, 1));
  EXPECT_NEAR(ops::DotScalar(a.data(), b.data(), n),
              ops::DotVector(a.data(), b.data(), n),
              1e-3 * std::max<size_t>(n, 1));
}

TEST_P(KernelEquivalence, L2Squared) {
  const size_t n = GetParam();
  auto a = RandomVec(n, 9), b = RandomVec(n, 10);
  EXPECT_NEAR(ops::L2SquaredScalar(a.data(), b.data(), n),
              ops::L2SquaredVector(a.data(), b.data(), n),
              1e-3 * std::max<size_t>(n, 1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, KernelEquivalence,
                         ::testing::Values(0, 1, 7, 8, 9, 15, 16, 63, 64,
                                           100, 1023));

class MatmulSizes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulSizes, ScalarVectorAgree) {
  auto [m, k, n] = GetParam();
  Rng rng(42);
  std::vector<float> a(static_cast<size_t>(m) * k);
  std::vector<float> b(static_cast<size_t>(k) * n);
  for (auto& x : a) x = static_cast<float>(rng.NextGaussian());
  for (auto& x : b) x = static_cast<float>(rng.NextGaussian());
  std::vector<float> cs(static_cast<size_t>(m) * n);
  std::vector<float> cv(static_cast<size_t>(m) * n);
  ops::MatmulScalar(a.data(), b.data(), cs.data(), m, k, n);
  ops::MatmulVector(a.data(), b.data(), cv.data(), m, k, n);
  for (size_t i = 0; i < cs.size(); ++i) {
    EXPECT_NEAR(cs[i], cv[i], 1e-3f) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulSizes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(8, 8, 8), std::make_tuple(5, 17, 9),
                      std::make_tuple(16, 32, 16),
                      std::make_tuple(1, 64, 1)));

TEST(OpsTest, MatmulKnownValues) {
  // [[1,2],[3,4]] * [[5,6],[7,8]] = [[19,22],[43,50]]
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {5, 6, 7, 8});
  auto c = ops::Matmul(a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_FLOAT_EQ(c->At(0, 0), 19);
  EXPECT_FLOAT_EQ(c->At(0, 1), 22);
  EXPECT_FLOAT_EQ(c->At(1, 0), 43);
  EXPECT_FLOAT_EQ(c->At(1, 1), 50);
}

TEST(OpsTest, MatmulShapeMismatch) {
  Tensor a({2, 3});
  Tensor b({2, 3});
  EXPECT_TRUE(ops::Matmul(a, b).status().IsInvalidArgument());
}

TEST(OpsTest, AddShapeMismatch) {
  EXPECT_TRUE(ops::Add(Tensor({2}), Tensor({3})).status().IsInvalidArgument());
}

TEST(OpsTest, SoftmaxSumsToOne) {
  Tensor t = Tensor::FromVector({1.0f, 2.0f, 3.0f});
  Tensor s = ops::Softmax(t);
  float sum = 0;
  for (int64_t i = 0; i < s.size(); ++i) {
    sum += s[i];
    EXPECT_GT(s[i], 0.0f);
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
  EXPECT_GT(s[2], s[1]);
  EXPECT_GT(s[1], s[0]);
}

TEST(OpsTest, SoftmaxRowWise) {
  Tensor t({2, 2}, {0, 10, 10, 0});
  Tensor s = ops::Softmax(t);
  EXPECT_GT(s.At(0, 1), 0.99f);
  EXPECT_GT(s.At(1, 0), 0.99f);
}

TEST(OpsTest, Argmax) {
  EXPECT_EQ(ops::Argmax(Tensor::FromVector({1, 5, 3})), 1);
  EXPECT_EQ(ops::Argmax(Tensor()), -1);
}

TEST(OpsTest, CosineSimilarity) {
  std::vector<float> a = {1, 0, 0};
  std::vector<float> b = {0, 1, 0};
  std::vector<float> c = {2, 0, 0};
  EXPECT_NEAR(ops::CosineSimilarity(a.data(), b.data(), 3), 0.0f, 1e-6f);
  EXPECT_NEAR(ops::CosineSimilarity(a.data(), c.data(), 3), 1.0f, 1e-6f);
  std::vector<float> zero = {0, 0, 0};
  EXPECT_EQ(ops::CosineSimilarity(a.data(), zero.data(), 3), 0.0f);
}

TEST(OpsTest, L2DistanceMatchesHandComputed) {
  Tensor a = Tensor::FromVector({0, 0});
  Tensor b = Tensor::FromVector({3, 4});
  EXPECT_NEAR(ops::L2Distance(a, b), 5.0f, 1e-5f);
}

TEST(OpsTest, L1Distance) {
  std::vector<float> a = {1, -2, 3};
  std::vector<float> b = {0, 0, 0};
  EXPECT_NEAR(ops::L1Scalar(a.data(), b.data(), 3), 6.0f, 1e-6f);
}

}  // namespace
}  // namespace deeplens
