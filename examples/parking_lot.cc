// Parking-lot utilization (the paper's Example 1, §2.2.1): count vehicles
// per frame of a CCTV feed, with the storage advisor choosing the physical
// layout from the workload profile before ingest.
#include <cstdio>
#include <filesystem>

#include "core/database.h"
#include "core/query.h"
#include "sim/datasets.h"
#include "storage/storage_advisor.h"

using namespace deeplens;  // NOLINT — example brevity

int main() {
  const std::string root =
      (std::filesystem::temp_directory_path() / "deeplens_parking")
          .string();
  std::filesystem::remove_all(root);
  auto db = Database::Open(root);
  DL_CHECK_OK(db.status());

  sim::TrafficCamConfig sim_config;
  sim_config.num_frames = 240;
  sim::TrafficCamSim lot(sim_config);

  // Ask the storage advisor for a layout: many short time-window queries
  // over a long recording, moderate storage budget.
  WorkloadProfile profile;
  profile.num_frames = sim_config.num_frames;
  profile.raw_frame_bytes = static_cast<uint64_t>(sim_config.width) *
                            sim_config.height * 3;
  profile.temporal_selectivity = 0.10;
  profile.expected_queries = 50;
  StorageAdvisor advisor;
  const uint64_t budget =
      profile.raw_frame_bytes * profile.num_frames / 4;  // 4x under raw
  StorageAdvice advice = advisor.Recommend(profile, budget);
  std::printf("storage advisor: %s\n  rationale: %s\n  predicted: %.2f MB, "
              "%.1f ms/query\n",
              VideoFormatName(advice.options.format),
              advice.rationale.c_str(),
              static_cast<double>(advice.predicted_storage_bytes) / 1e6,
              advice.predicted_query_seconds * 1e3);

  // Ingest with the advised layout.
  std::vector<Image> frames;
  for (int f = 0; f < lot.num_frames(); ++f) frames.push_back(lot.FrameAt(f));
  DL_CHECK_OK((*db)->IngestVideo("lot", FramesFromVector(std::move(frames)),
                                 advice.options, "parking lot CCTV"));

  // ETL: detect vehicles.
  auto video = (*db)->LoadVideo("lot");
  DL_CHECK_OK(video.status());
  auto detections = MakeObjectDetectorGenerator(
      FramesFromVideo(*video), (*db)->detector(),
      (*db)->MakeEtlOptions("lot"));
  DL_CHECK_OK((*db)->RegisterView("lot_dets", detections.get()));
  DL_CHECK_OK(
      (*db)->BuildIndex("lot_dets", IndexKind::kHash, meta_keys::kLabel)
          .status());
  DL_CHECK_OK((*db)
                  ->BuildIndex("lot_dets", IndexKind::kBPlusTree,
                               meta_keys::kFrameNo)
                  .status());

  // Utilization report: cars per frame over a few time windows. The
  // schema check validates the label against the detector's closed world.
  Query cars(db->get(), "lot_dets");
  cars.CheckSchema(DetectorSchema());
  cars.Where(Eq(Attr(meta_keys::kLabel), Lit("car")));
  auto per_frame = cars.GroupCount(meta_keys::kFrameNo);
  DL_CHECK_OK(per_frame.status());

  uint64_t peak = 0;
  double total = 0;
  for (const auto& [frame, count] : *per_frame) {
    peak = std::max(peak, count);
    total += static_cast<double>(count);
  }
  std::printf("\nutilization over %d frames:\n", sim_config.num_frames);
  std::printf("  frames with vehicles : %zu\n", per_frame->size());
  std::printf("  peak vehicles/frame  : %llu\n",
              static_cast<unsigned long long>(peak));
  std::printf("  mean vehicles/frame  : %.2f (over occupied frames)\n",
              per_frame->empty() ? 0.0 : total / per_frame->size());

  // A time-window query that benefits from the frameno B+Tree.
  Query window(db->get(), "lot_dets");
  window.Where(Eq(Attr(meta_keys::kLabel), Lit("car")));
  window.Where(Ge(Attr(meta_keys::kFrameNo), Lit(int64_t{100})));
  window.Where(Le(Attr(meta_keys::kFrameNo), Lit(int64_t{140})));
  auto in_window = window.Count();
  DL_CHECK_OK(in_window.status());
  std::printf("  vehicles in frames [100, 140]: %llu\n",
              static_cast<unsigned long long>(*in_window));

  // The type system rejects labels the detector can never produce.
  Query invalid(db->get(), "lot_dets");
  invalid.CheckSchema(DetectorSchema());
  invalid.Where(Eq(Attr(meta_keys::kLabel), Lit("bicycle")));
  auto should_fail = invalid.Count();
  std::printf("  query for label 'bicycle' rejected by validation: %s\n",
              should_fail.status().ToString().c_str());

  std::filesystem::remove_all(root);
  return 0;
}
