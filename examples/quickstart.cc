// Quickstart: the DeepLens workflow end to end on a tiny synthetic video.
//
//   1. Open a Database.
//   2. Ingest a video (the loader abstracts the storage layout).
//   3. Run the ETL: object detection → patches, featurization.
//   4. Register the patches as a queryable view and build an index.
//   5. Ask a declarative question and inspect the chosen plan.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <filesystem>

#include "core/database.h"
#include "core/query.h"
#include "sim/datasets.h"

using namespace deeplens;  // NOLINT — example brevity

int main() {
  const std::string root =
      (std::filesystem::temp_directory_path() / "deeplens_quickstart")
          .string();
  std::filesystem::remove_all(root);

  // 1. A DeepLens instance rooted at a directory.
  auto db = Database::Open(root);
  DL_CHECK_OK(db.status());

  // 2. Ingest a short traffic video. Frames come from the bundled
  //    simulator here; in a real deployment they come from a camera.
  //    The Segmented layout gives coarse temporal push-down at near-
  //    encoded compression.
  sim::TrafficCamConfig sim_config;
  sim_config.num_frames = 120;
  sim::TrafficCamSim traffic(sim_config);
  std::vector<Image> frames;
  for (int f = 0; f < traffic.num_frames(); ++f) {
    frames.push_back(traffic.FrameAt(f));
  }
  VideoStoreOptions layout;
  layout.format = VideoFormat::kSegmented;
  layout.clip_frames = 24;
  DL_CHECK_OK((*db)->IngestVideo("demo", FramesFromVector(std::move(frames)),
                                 layout, "quickstart traffic clip"));
  std::printf("ingested 'demo': %d frames, %s layout\n",
              sim_config.num_frames, VideoFormatName(layout.format));

  // 3. ETL: run the object detector over the stored video and featurize
  //    the resulting patches for similarity queries.
  auto video = (*db)->LoadVideo("demo");
  DL_CHECK_OK(video.status());
  auto detections = MakeObjectDetectorGenerator(
      FramesFromVideo(*video), (*db)->detector(),
      (*db)->MakeEtlOptions("demo"));
  auto featurized = MakeColorHistogramTransformer(std::move(detections),
                                                  ColorHistogramOptions{});

  // 4. Materialize as the view "demo_dets" and index the label column.
  DL_CHECK_OK((*db)->RegisterView("demo_dets", featurized.get()));
  auto stats =
      (*db)->BuildIndex("demo_dets", IndexKind::kHash, meta_keys::kLabel);
  DL_CHECK_OK(stats.status());
  std::printf("view 'demo_dets': %llu patches, label index built in %.2f ms\n",
              static_cast<unsigned long long>(stats->num_entries),
              stats->build_millis);

  // 5. Declarative query: how many frames show at least one car?
  Query query(db->get(), "demo_dets");
  query.Where(Eq(Attr(meta_keys::kLabel), Lit("car")));
  auto plan = query.Explain();
  DL_CHECK_OK(plan.status());
  auto frames_with_cars = query.CountDistinct(meta_keys::kFrameNo);
  DL_CHECK_OK(frames_with_cars.status());

  std::printf("plan: %s\n", plan->description.c_str());
  std::printf("frames with >= 1 car: %llu (ground truth: %d)\n",
              static_cast<unsigned long long>(*frames_with_cars),
              traffic.FramesWithVehicles());

  // Lineage: every patch can be traced back to its source frame.
  auto view = (*db)->GetView("demo_dets");
  DL_CHECK_OK(view.status());
  if (!(*view)->patches.empty()) {
    const Patch& p = (*view)->patches.front();
    auto origin = (*db)->lineage()->Backtrace(p.id());
    DL_CHECK_OK(origin.status());
    std::printf("patch %llu backtraces to %s frame %lld\n",
                static_cast<unsigned long long>(p.id()),
                origin->dataset.c_str(),
                static_cast<long long>(origin->frameno));
  }

  std::filesystem::remove_all(root);
  return 0;
}
