// Text search over an image corpus (the paper's q5): run OCR over the PC
// dataset, materialize the recognized strings as a view, and look up which
// image contains a target string — persisting the ETL product so later
// sessions skip the expensive inference.
#include <cstdio>
#include <filesystem>

#include "common/clock.h"
#include "core/database.h"
#include "core/query.h"
#include "sim/datasets.h"

using namespace deeplens;  // NOLINT — example brevity

int main() {
  const std::string root =
      (std::filesystem::temp_directory_path() / "deeplens_ocr").string();
  std::filesystem::remove_all(root);
  auto db = Database::Open(root);
  DL_CHECK_OK(db.status());

  sim::PcConfig config;
  config.num_images = 150;
  config.num_text_images = 40;
  config.num_duplicates = 10;
  sim::PcSim pc(config);

  // ETL: OCR every image, keeping only legible text patches. This is the
  // expensive phase — materialize it (paper §4.1 "Materialize").
  Stopwatch etl_timer;
  {
    auto counter = std::make_shared<int>(0);
    const sim::PcSim* sim = &pc;
    FrameIterator images =
        [sim, counter]() -> Result<std::optional<std::pair<int, Image>>> {
      if (*counter >= sim->num_images()) {
        return std::optional<std::pair<int, Image>>();
      }
      const int i = (*counter)++;
      return std::optional<std::pair<int, Image>>(
          std::make_pair(i, sim->ImageAt(i)));
    };
    auto text_patches =
        MakeOcrGenerator(std::move(images), (*db)->detector(), (*db)->ocr(),
                         (*db)->MakeEtlOptions("pc"));
    DL_CHECK_OK((*db)->RegisterView("pc_text", text_patches.get()));
    DL_CHECK_OK((*db)->PersistView("pc_text"));
  }
  std::printf("OCR ETL over %d images: %.0f ms (materialized to disk)\n",
              config.num_images, etl_timer.ElapsedMillis());

  // A later session would reload the view instead of re-running OCR:
  Stopwatch reload_timer;
  DL_CHECK_OK((*db)->LoadPersistedView("pc_text"));
  std::printf("reloading the materialized view: %.1f ms (%.0fx cheaper "
              "than the ETL)\n",
              reload_timer.ElapsedMillis(),
              etl_timer.ElapsedMillis() /
                  std::max(0.01, reload_timer.ElapsedMillis()));

  auto view = (*db)->GetView("pc_text");
  DL_CHECK_OK(view.status());
  std::printf("recognized %zu text regions\n", (*view)->patches.size());

  // Index the text column and search for the target string.
  DL_CHECK_OK((*db)
                  ->BuildIndex("pc_text", IndexKind::kHash, meta_keys::kText)
                  .status());
  const std::string target = config.target_string;
  Query query(db->get(), "pc_text");
  query.CheckSchema(OcrSchema());
  query.Where(Eq(Attr(meta_keys::kText), Lit(target)));
  auto plan = query.Explain();
  DL_CHECK_OK(plan.status());
  auto hit = query.FirstBy(meta_keys::kFrameNo);
  DL_CHECK_OK(hit.status());

  std::printf("search '%s' → plan: %s\n", target.c_str(),
              plan->description.c_str());
  if (hit->has_value()) {
    const int64_t image =
        (**hit).meta().Get(meta_keys::kFrameNo).AsInt().ValueOr(-1);
    std::printf("found in image %lld (ground truth: image %d)\n",
                static_cast<long long>(image), pc.TargetImage());
  } else {
    std::printf("string not found (ground truth: image %d)\n",
                pc.TargetImage());
  }

  std::filesystem::remove_all(root);
  return 0;
}
