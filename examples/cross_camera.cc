// Cross-camera car matching (the paper's Example 2, §2.2.2): given two
// CCTV feeds, find the cars that appear in both. Detections from each
// camera are featurized, then matched with the on-the-fly Ball-Tree
// similarity join — with a nested-loop run for comparison, mirroring the
// planner's choice.
#include <cstdio>
#include <filesystem>
#include <set>

#include "common/clock.h"
#include "core/database.h"
#include "core/planner.h"
#include "sim/datasets.h"

using namespace deeplens;  // NOLINT — example brevity

namespace {

PatchCollection DetectCars(Database* db, const std::string& name,
                           const sim::TrafficCamSim& camera) {
  std::vector<Image> frames;
  for (int f = 0; f < camera.num_frames(); ++f) {
    frames.push_back(camera.FrameAt(f));
  }
  auto detections = MakeObjectDetectorGenerator(
      FramesFromVector(std::move(frames)), db->detector(),
      db->MakeEtlOptions(name));
  ColorHistogramOptions features;
  features.bins = 16;
  features.grid = 2;
  auto featurized =
      MakeColorHistogramTransformer(std::move(detections), features);
  auto filtered =
      MakeFilter(std::move(featurized), Eq(Attr(meta_keys::kLabel),
                                           Lit("car")));
  auto cars = CollectPatches(filtered.get());
  DL_CHECK_OK(cars.status());
  return std::move(cars).value();
}

}  // namespace

int main() {
  const std::string root =
      (std::filesystem::temp_directory_path() / "deeplens_crosscam")
          .string();
  std::filesystem::remove_all(root);
  auto db = Database::Open(root);
  DL_CHECK_OK(db.status());

  // Two cameras with different private traffic but two shared cars
  // (vehicles that drive past both).
  sim::TrafficCamConfig cam1, cam2;
  cam1.num_frames = cam2.num_frames = 120;
  cam1.seed = 1001;
  cam2.seed = 2002;
  cam1.shared_car_ids = {7801, 7802};
  cam2.shared_car_ids = {7801, 7802};
  sim::TrafficCamSim camera1(cam1), camera2(cam2);

  PatchCollection cars1 = DetectCars(db->get(), "cam1", camera1);
  PatchCollection cars2 = DetectCars(db->get(), "cam2", camera2);
  std::printf("camera 1: %zu car patches; camera 2: %zu car patches\n",
              cars1.size(), cars2.size());

  // Ask the planner which join strategy fits these relation sizes at the
  // pool's actual width (parallel build + probe discount the ball-tree).
  const auto strategy = Planner::ChooseSimilarityJoin(
      cars1.size(), cars2.size(), 60, /*gpu_available=*/false,
      ResolveMorselWorkers({}));
  std::printf("planner suggests: %s join\n", SimJoinStrategyName(strategy));

  // On-the-fly Ball-Tree similarity join (paper §5).
  SimilarityJoinOptions options;
  options.max_distance = 0.25f;
  Stopwatch bt_timer;
  auto l1 = MakeVectorSource(cars1);
  auto r1 = MakeVectorSource(cars2);
  JoinStats stats;
  auto matches = BallTreeSimilarityJoin(l1.get(), r1.get(), options,
                                        nullptr, &stats);
  DL_CHECK_OK(matches.status());
  const double bt_ms = bt_timer.ElapsedMillis();

  // Baseline: nested loop with the same predicate.
  Stopwatch nl_timer;
  auto l2 = MakeVectorSource(cars1);
  auto r2 = MakeVectorSource(cars2);
  auto baseline = NestedLoopJoin(
      l2.get(), r2.get(),
      Le(FeatureDistance(0, 1), Lit(static_cast<double>(options.max_distance))));
  DL_CHECK_OK(baseline.status());
  const double nl_ms = nl_timer.ElapsedMillis();

  std::printf("ball-tree join: %zu matched pairs in %.1f ms "
              "(index build %.1f ms included)\n",
              matches->size(), bt_ms, stats.index_build_millis);
  std::printf("nested loop:    %zu matched pairs in %.1f ms (%.1fx slower)\n",
              baseline->size(), nl_ms, nl_ms / std::max(0.01, bt_ms));

  // Group matched pairs by camera-1 patch and report distinct vehicles
  // seen by both cameras (the ground truth is the 2 shared cars).
  std::set<std::pair<int, int>> matched_truth;
  for (const PatchTuple& pair : *matches) {
    const auto truth_of = [](const sim::TrafficCamSim& cam,
                             const Patch& p) {
      const int64_t frameno =
          p.meta().Get(meta_keys::kFrameNo).AsInt().ValueOr(-1);
      int best = -1;
      float best_iou = 0.2f;
      for (const auto& o : cam.TruthAt(static_cast<int>(frameno)).objects) {
        const float iou = p.bbox().Iou(o.bbox);
        if (iou > best_iou) {
          best_iou = iou;
          best = o.object_id;
        }
      }
      return best;
    };
    const int id1 = truth_of(camera1, pair[0]);
    const int id2 = truth_of(camera2, pair[1]);
    if (id1 >= 0 && id2 >= 0) matched_truth.insert({id1, id2});
  }
  int correct = 0;
  for (const auto& [a, b] : matched_truth) {
    if (a == b) ++correct;
  }
  std::printf("distinct identity pairs matched: %zu (%d correct "
              "cross-camera identities; ground truth has 2 shared cars)\n",
              matched_truth.size(), correct);

  std::filesystem::remove_all(root);
  return 0;
}
