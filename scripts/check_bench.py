#!/usr/bin/env python3
"""Bench regression gate for the `bench` CI stage.

Compares the speedup metrics of freshly emitted BENCH_cache.json /
BENCH_pipeline.json / BENCH_store.json / BENCH_plans.json (written into
the repo root by bench_micro_cache, bench_micro_pipeline_batch,
bench_micro_store, and bench_tab1_plans --optimizer-only)
against the committed baselines in
bench/baselines/, and fails when any metric regresses by more than 20%.

Metrics are *ratios* (warm-vs-cold speedups, parallel-vs-tuple speedups,
TinyLFU-vs-LRU advantage), not absolute timings, so they transfer across
machines; the baselines are deliberately conservative floors from a
blessed run (see the `_note` field in each baseline file) and the 20%
margin absorbs scheduler noise on top of that.

Exit codes: 0 = no regression, 1 = regression or malformed input.
"""

import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
TOLERANCE = 0.8  # fail when fresh < 0.8 * baseline (>20% regression)


def load(path: pathlib.Path):
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        print(f"check_bench: missing {path} (did the bench stage run?)")
        return None
    except json.JSONDecodeError as e:
        print(f"check_bench: {path} is not valid JSON: {e}")
        return None


def case_ms(doc, name):
    for case in doc.get("cases", []):
        if case.get("name") == name:
            return case.get("ms")
    return None


def cache_metrics(doc):
    """Every top-level ratio metric the cache bench emits."""
    return {
        k: v
        for k, v in doc.items()
        if isinstance(v, (int, float))
        and ("_speedup" in k or "_advantage" in k)
    }


def pipeline_metrics(doc):
    """Speedups derived from the pipeline bench's case timings."""
    metrics = {}
    tuple_ms = case_ms(doc, "filter_map_tuple")
    for engine in ("filter_map_batch_serial", "filter_map_batch_parallel"):
        ms = case_ms(doc, engine)
        if tuple_ms and ms:
            metrics[f"{engine}_speedup"] = tuple_ms / ms

    # Parallel-vs-serial ratios for the radix join and partitioned
    # aggregation. parallel_join_speedup carries a >= 1.0 floor in the
    # baseline: parallel losing to serial (the pre-radix state of the
    # world) fails CI instead of sitting silently in the JSON.
    ratios = (
        ("parallel_join_speedup", "hash_join_serial", "hash_join_parallel"),
        ("parallel_join_speedup_4w", "hash_join_serial",
         "hash_join_parallel_4w"),
        ("parallel_group_by_speedup", "group_by_serial", "group_by_parallel"),
        ("parallel_group_by_speedup_4w", "group_by_serial",
         "group_by_parallel_4w"),
        # Skew tax: uniform-parallel over skew-parallel. A floor of ~0.67
        # encodes "Zipf-skewed keys may cost at most 1.5x the uniform
        # join"; below that, partition skew handling has regressed.
        ("join_skew_uniform_ratio", "hash_join_parallel",
         "hash_join_parallel_skew"),
    )
    for metric, num_case, den_case in ratios:
        num_ms = case_ms(doc, num_case)
        den_ms = case_ms(doc, den_case)
        if num_ms and den_ms:
            metrics[metric] = num_ms / den_ms

    # Serving-layer gates. serving_concurrent_ratio: the same work split
    # over 4 sessions must not lose to one session issuing it serially
    # (scheduler locking/interleaving overhead); >1 on real multi-core.
    # serving_isolation_ratio: solo-p95 over under-load-p95 of a short
    # query while a long scan floods the pool — fair-share interleaving
    # keeps this bounded; FIFO dispatch would crater it toward 0.
    solo_ms = case_ms(doc, "serving_solo_1s")
    conc_ms = case_ms(doc, "serving_concurrent_4s")
    if solo_ms and conc_ms:
        metrics["serving_concurrent_ratio"] = solo_ms / conc_ms
    p95_solo = case_ms(doc, "serving_short_p95_solo")
    p95_loaded = case_ms(doc, "serving_short_p95_loaded")
    if p95_solo and p95_loaded:
        metrics["serving_isolation_ratio"] = p95_solo / p95_loaded
    # In-flight dedup rate is emitted directly by the bench (fraction of
    # concurrent identical inferences that did NOT lead a computation).
    dedup = doc.get("serving_dedup_rate")
    if isinstance(dedup, (int, float)):
        metrics["serving_dedup_rate"] = dedup
    # Cross-query device batching: 4 sessions OCR-ing distinct panels on
    # the simulated GPU, batch former off vs on. The ratio is the launch-
    # overhead amortization from flushing concurrent sessions' patches as
    # one device invocation; results are verified equal before timing.
    unbatched_ms = case_ms(doc, "serving_ocr_unbatched_4s")
    batched_ms = case_ms(doc, "serving_ocr_batched_4s")
    if unbatched_ms and batched_ms:
        metrics["device_batch_amortization"] = unbatched_ms / batched_ms
    return metrics


def store_metrics(doc):
    """Columnar-vs-legacy ratios emitted by the store bench.

    columnar_scan_speedup is the headline: a 10%-selectivity range scan
    through the planner's zone-map path vs a legacy full-read-then-filter.
    zonemap_prune_ratio is deterministic (pinned chunk geometry), so its
    baseline sits close to the measured value — a drop means chunk
    selection stopped pruning, not that the machine was slow.
    """
    return {
        k: v
        for k, v in doc.items()
        if isinstance(v, (int, float))
        and ("_speedup" in k or "_ratio" in k)
    }


def plans_metrics(doc):
    """Optimizer ratios emitted by bench_tab1_plans --optimizer-only.

    udf_reorder_speedup: a query written expensive-UDF-first vs the
    planner's cost-ranked order (cheap sargable conjunct hoisted in front
    of the model). cascade_speedup: proxy cascade at threshold 0.25 vs
    the full-model scan on a 70%-confidently-rejectable view. Both are
    verified byte-identical before timing, so a regression here is pure
    performance, never accuracy.
    """
    return {
        k: v
        for k, v in doc.items()
        if isinstance(v, (int, float)) and "_speedup" in k
    }


def check(fresh_name, extract):
    fresh_doc = load(REPO_ROOT / fresh_name)
    base_doc = load(REPO_ROOT / "bench" / "baselines" / fresh_name)
    if fresh_doc is None or base_doc is None:
        return [f"{fresh_name}: unreadable input"]
    fresh = extract(fresh_doc)
    baseline = {
        k: v for k, v in base_doc.items()
        if isinstance(v, (int, float)) and not k.startswith("_")
    }
    failures = []
    for metric, floor in sorted(baseline.items()):
        got = fresh.get(metric)
        if got is None:
            # A vanished metric is gate erosion, not a free pass.
            failures.append(
                f"{fresh_name}: metric '{metric}' missing from fresh run")
            continue
        status = "ok"
        if got < floor * TOLERANCE:
            status = "REGRESSION"
            failures.append(
                f"{fresh_name}: {metric} = {got:.2f} < "
                f"{TOLERANCE:.0%} of baseline {floor:.2f}")
        print(f"  {fresh_name:<20} {metric:<38} "
              f"{got:8.2f}  (baseline {floor:.2f})  {status}")
    for metric in sorted(set(fresh) - set(baseline)):
        print(f"  {fresh_name:<20} {metric:<38} "
              f"{fresh[metric]:8.2f}  (no baseline — not gated)")
    return failures


def main():
    print("bench regression gate (fail below "
          f"{TOLERANCE:.0%} of baseline):")
    failures = []
    failures += check("BENCH_cache.json", cache_metrics)
    failures += check("BENCH_pipeline.json", pipeline_metrics)
    failures += check("BENCH_store.json", store_metrics)
    failures += check("BENCH_plans.json", plans_metrics)
    if failures:
        print("\ncheck_bench: FAILED")
        for f in failures:
            print(f"  {f}")
        return 1
    print("\ncheck_bench: all metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
