#!/usr/bin/env bash
# Staged CI pipeline. Stages (in default order):
#
#   configure — cmake -B $BUILD_DIR
#   build     — compile everything
#   test      — full ctest suite
#   bench     — bench_micro_cache + bench_micro_pipeline_batch +
#               bench_micro_store, then the regression gate
#               (scripts/check_bench.py vs bench/baselines/)
#   fuzz      — short-budget run of the fuzz battery (fuzz/), each target
#               seeded from deeplens_make_corpus output
#   tsan      — ThreadSanitizer build of the `parallel`-labeled suites
#   asan      — AddressSanitizer+UBSan build of the `parallel`- and
#               `persistence`-labeled suites
#   docs      — docs/KNOBS.md consistency: every DEEPLENS_* env knob
#               referenced by src/ or bench/ (and ci.sh's own control
#               vars) must appear in the knob reference table
#
# Usage: scripts/ci.sh [build-dir]
#   DEEPLENS_CI_STAGES   comma/space-separated subset to run, in the
#                        order given (default: all of the above). Stages
#                        assume their prerequisites have run at some
#                        point (e.g. `test` needs a configured+built
#                        tree); tsan/asan configure their own build dirs
#                        and are self-contained.
#   DEEPLENS_SKIP_TSAN=1 drops the tsan stage (back-compat knob).
# A per-stage timing summary is printed at the end; the first failing
# stage aborts the pipeline with its name on stderr.
# -E so the ERR trap fires inside stage functions too (a plain `if !
# stage_x` guard would suppress errexit within the function and let a
# failing middle command slide).
set -eEuo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
NPROC="$(nproc)"

STAGES="${DEEPLENS_CI_STAGES:-configure build test bench fuzz tsan asan docs}"
STAGES="${STAGES//,/ }"
if [[ "${DEEPLENS_SKIP_TSAN:-0}" == "1" ]]; then
  STAGES="$(printf '%s\n' $STAGES | grep -vx tsan | tr '\n' ' ' || true)"
fi

stage_configure() {
  cmake -B "$BUILD_DIR" -S .
}

stage_build() {
  cmake --build "$BUILD_DIR" -j"$NPROC"
}

stage_test() {
  (cd "$BUILD_DIR" && ctest --output-on-failure -j"$NPROC")
}

stage_bench() {
  # Cache perf gate: warm >= 3x cold for the inference cache, the
  # decoded-segment cache, and the warm-restart phase, plus TinyLFU >= 2x
  # LRU on the hot set under scan traffic. Writes BENCH_cache.json.
  "$BUILD_DIR"/bench_micro_cache
  # Pipeline gate: batch+parallel vs tuple baseline. Writes
  # BENCH_pipeline.json.
  "$BUILD_DIR"/bench_micro_pipeline_batch
  # Storage gate: pruned columnar scan >= 2x the legacy selective scan
  # with zone maps pruning >= half the chunks. Writes BENCH_store.json.
  "$BUILD_DIR"/bench_micro_store
  # Optimizer gate: UDF-first query reordered >= 2x, proxy cascade >=
  # 1.2x, both byte-identical to the naive plans. Writes
  # BENCH_plans.json.
  "$BUILD_DIR"/bench_tab1_plans --optimizer-only
  # Regression gate: fresh speedups must stay within 20% of the
  # committed baselines.
  python3 scripts/check_bench.py
}

stage_fuzz() {
  # Short-budget pass over the fuzz battery: regenerate the seed corpus,
  # then give each target a bounded run. Under clang this is real
  # libFuzzer; under gcc the standalone driver replays the corpus and
  # mutates from it — either way the targets' invariants (typed errors,
  # lossless round-trips, no UB) are exercised on every commit. Long
  # exploratory runs stay manual; this stage is a tripwire.
  cmake --build "$BUILD_DIR" -j"$NPROC" \
    --target fuzz_inference_value fuzz_record_store fuzz_codec \
             fuzz_columnar deeplens_make_corpus
  local corpus="$BUILD_DIR/fuzz-corpus"
  rm -rf "$corpus"
  "$BUILD_DIR"/deeplens_make_corpus "$corpus"
  "$BUILD_DIR"/fuzz_inference_value -runs=20000 -max_total_time=20 \
    "$corpus/inference"
  "$BUILD_DIR"/fuzz_record_store -runs=1500 -max_total_time=30 \
    "$corpus/store"
  "$BUILD_DIR"/fuzz_codec -runs=8000 -max_total_time=30 "$corpus/codec"
  "$BUILD_DIR"/fuzz_columnar -runs=1500 -max_total_time=30 \
    "$corpus/columnar"
}

stage_tsan() {
  local dir="${BUILD_DIR}-tsan"
  cmake -B "$dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS=-fsanitize=thread \
    -DCMAKE_EXE_LINKER_FLAGS=-fsanitize=thread \
    -DDEEPLENS_BUILD_BENCHES=OFF \
    -DDEEPLENS_BUILD_EXAMPLES=OFF \
    -DDEEPLENS_BUILD_FUZZERS=OFF
  cmake --build "$dir" -j"$NPROC" \
    --target exec_parallel_test exec_batch_test cache_test persistence_test \
             serving_test columnar_test optimizer_test batch_former_test
  (cd "$dir" && ctest --output-on-failure -L parallel)
}

stage_asan() {
  local dir="${BUILD_DIR}-asan"
  cmake -B "$dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" \
    -DDEEPLENS_BUILD_BENCHES=OFF \
    -DDEEPLENS_BUILD_EXAMPLES=OFF \
    -DDEEPLENS_BUILD_FUZZERS=OFF
  cmake --build "$dir" -j"$NPROC" \
    --target exec_parallel_test exec_batch_test cache_test persistence_test \
             storage_test serving_test columnar_test optimizer_test \
             batch_former_test
  (cd "$dir" && ctest --output-on-failure -L 'parallel|persistence')
}

stage_docs() {
  # Knob-reference consistency: every DEEPLENS_* env knob the code reads
  # must be documented in docs/KNOBS.md. Matches quoted string literals
  # only, so preprocessor macros that merely share the prefix (e.g.
  # DEEPLENS_SVB_X86) don't count as env knobs; tests/ is excluded
  # because fixtures invent throwaway knob names on purpose.
  local knobs missing=0
  knobs="$( { grep -rhoE '"DEEPLENS_[A-Z0-9_]+"' src bench | tr -d '"';
              grep -hoE 'DEEPLENS_(CI_STAGES|SKIP_TSAN)' scripts/ci.sh;
            } | sort -u )"
  if [[ ! -f docs/KNOBS.md ]]; then
    echo "ci.sh: docs/KNOBS.md missing" >&2
    return 1
  fi
  local knob
  for knob in $knobs; do
    if ! grep -q "$knob" docs/KNOBS.md; then
      echo "ci.sh: knob ${knob} is read by the code but undocumented" \
           "in docs/KNOBS.md" >&2
      missing=1
    fi
  done
  if [[ "$missing" == "1" ]]; then return 1; fi
  echo "docs: all $(echo "$knobs" | wc -l) referenced knobs documented"
}

declare -a RAN_NAMES=() RAN_SECS=()

print_summary() {
  if [[ ${#RAN_NAMES[@]} -eq 0 ]]; then return; fi
  echo
  echo "=== stage timing ==="
  local i
  for i in "${!RAN_NAMES[@]}"; do
    printf '  %-10s %5ss\n' "${RAN_NAMES[$i]}" "${RAN_SECS[$i]}"
  done
}

for stage in $STAGES; do
  if ! declare -F "stage_${stage}" > /dev/null; then
    echo "ci.sh: unknown stage '${stage}' (valid: configure build test" \
         "bench fuzz tsan asan docs)" >&2
    exit 2
  fi
done

CURRENT_STAGE=""
on_error() {
  echo "ci.sh: stage '${CURRENT_STAGE}' FAILED" >&2
  print_summary
}
trap on_error ERR

for stage in $STAGES; do
  CURRENT_STAGE="$stage"
  echo
  echo "=== stage: ${stage} ==="
  t0=$SECONDS
  "stage_${stage}"
  RAN_NAMES+=("$stage")
  RAN_SECS+=($((SECONDS - t0)))
done

print_summary
echo
echo "ci.sh: all stages passed (${RAN_NAMES[*]})"
