#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full ctest suite, then
# rebuild the parallel-execution tests under ThreadSanitizer so data races
# in the morsel-parallel paths fail the build.
# Usage: scripts/ci.sh [build-dir]
#   DEEPLENS_SKIP_TSAN=1 skips the (slow) sanitizer stage.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$(nproc)"
(cd "$BUILD_DIR" && ctest --output-on-failure -j"$(nproc)")

# Cache perf gate: fails unless warm latency beats cold by >= 3x for the
# inference cache, the decoded-segment cache, AND the warm-restart phase
# (fresh Database over a persistent DEEPLENS_CACHE_DIR spill log). Writes
# BENCH_cache.json into the repo root.
"$BUILD_DIR"/bench_micro_cache

if [[ "${DEEPLENS_SKIP_TSAN:-0}" != "1" ]]; then
  TSAN_DIR="${BUILD_DIR}-tsan"
  cmake -B "$TSAN_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS=-fsanitize=thread \
    -DCMAKE_EXE_LINKER_FLAGS=-fsanitize=thread \
    -DDEEPLENS_BUILD_BENCHES=OFF \
    -DDEEPLENS_BUILD_EXAMPLES=OFF
  cmake --build "$TSAN_DIR" -j"$(nproc)" \
    --target exec_parallel_test exec_batch_test cache_test persistence_test
  (cd "$TSAN_DIR" && ctest --output-on-failure \
    -R '^(exec_parallel_test|exec_batch_test|cache_test|persistence_test)$')
fi
